//! Chrome `trace_event` JSON export.
//!
//! Emits the object form (`{"traceEvents": [...]}`) with complete (`"X"`)
//! events, one virtual thread per [`Component`], so a recorded run opens
//! directly in Perfetto or `chrome://tracing`. Timestamps are microseconds
//! per the trace_event spec; simulated picoseconds divide exactly into
//! fractional µs, and the encoder's shortest-round-trip float formatting
//! keeps the output byte-stable.

use crate::counters::Component;
use crate::ring::TraceRing;
use crate::span::{RequestSpans, SpanKind};
use clme_types::json::JsonValue;
use clme_types::time::PS_PER_US;

/// The `pid` used for all emitted events (one simulated process).
const TRACE_PID: f64 = 1.0;

fn us(ps: u64) -> f64 {
    ps as f64 / PS_PER_US as f64
}

/// Serialises a ring of trace events as Chrome `trace_event` JSON.
///
/// # Examples
///
/// ```
/// use clme_obs::{chrome_trace_json, Component, EventKind, TraceEvent, TraceRing};
/// use clme_types::{Time, TimeDelta};
///
/// let mut ring = TraceRing::new(8);
/// ring.push(TraceEvent {
///     at: Time::from_picos(2_000_000),
///     component: Component::Dram,
///     event: EventKind::RowHit,
///     addr: 0x41,
///     latency: TimeDelta::from_ns(20),
/// });
/// let json = chrome_trace_json(&ring);
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"row-hit\""));
/// ```
pub fn chrome_trace_json(ring: &TraceRing) -> String {
    let mut events: Vec<JsonValue> = Vec::with_capacity(ring.len() + Component::ALL.len());
    // Metadata events name the virtual threads so tracks are labelled.
    for &component in Component::ALL.iter() {
        events.push(JsonValue::Obj(vec![
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::Num(TRACE_PID)),
            ("tid".into(), JsonValue::Num(component as usize as f64)),
            ("name".into(), JsonValue::Str("thread_name".into())),
            (
                "args".into(),
                JsonValue::Obj(vec![(
                    "name".into(),
                    JsonValue::Str(component.name().into()),
                )]),
            ),
        ]));
    }
    for event in ring.iter() {
        events.push(JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str(event.event.name().into())),
            (
                "cat".into(),
                JsonValue::Str(event.component.name().into()),
            ),
            ("ph".into(), JsonValue::Str("X".into())),
            ("pid".into(), JsonValue::Num(TRACE_PID)),
            (
                "tid".into(),
                JsonValue::Num(event.component as usize as f64),
            ),
            ("ts".into(), JsonValue::Num(us(event.at.picos()))),
            ("dur".into(), JsonValue::Num(us(event.latency.picos()))),
            (
                "args".into(),
                JsonValue::Obj(vec![(
                    "addr".into(),
                    JsonValue::Str(format!("{:#x}", event.addr)),
                )]),
            ),
        ]));
    }
    let doc = JsonValue::Obj(vec![
        ("displayTimeUnit".into(), JsonValue::Str("ns".into())),
        ("traceEvents".into(), JsonValue::Arr(events)),
    ]);
    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

/// The virtual thread a request's roll-up span renders on; child spans
/// render on `1 + SpanKind` so each dependency kind gets its own track.
const REQUEST_TID: f64 = 0.0;

fn flow_event(ph: &str, id: u64, tid: f64, ts_ps: u64) -> JsonValue {
    let mut fields = vec![
        ("name".into(), JsonValue::Str("critical-path".into())),
        ("cat".into(), JsonValue::Str("critpath".into())),
        ("ph".into(), JsonValue::Str(ph.into())),
        ("id".into(), JsonValue::Num(id as f64)),
        ("pid".into(), JsonValue::Num(TRACE_PID)),
        ("tid".into(), JsonValue::Num(tid)),
        ("ts".into(), JsonValue::Num(us(ts_ps))),
    ];
    if ph == "f" {
        // Bind the finish to the enclosing slice's end, per the spec.
        fields.push(("bp".into(), JsonValue::Str("e".into())));
    }
    JsonValue::Obj(fields)
}

/// Serialises sampled request spans as Chrome `trace_event` JSON with
/// flow arrows: each request is an `"X"` roll-up slice plus one slice per
/// child span on a per-kind track, connected by `"s"`/`"t"`/`"f"` flow
/// events sharing the request id, so Perfetto draws the causal chain.
///
/// `label` names the process (the run-matrix cell the spans came from).
pub fn span_flow_json(label: &str, requests: &[RequestSpans]) -> String {
    let mut events: Vec<JsonValue> = Vec::with_capacity(2 + requests.len() * 8);
    events.push(JsonValue::Obj(vec![
        ("ph".into(), JsonValue::Str("M".into())),
        ("pid".into(), JsonValue::Num(TRACE_PID)),
        ("tid".into(), JsonValue::Num(REQUEST_TID)),
        ("name".into(), JsonValue::Str("process_name".into())),
        (
            "args".into(),
            JsonValue::Obj(vec![("name".into(), JsonValue::Str(label.into()))]),
        ),
    ]));
    events.push(thread_name(REQUEST_TID, "requests"));
    for &kind in SpanKind::ALL.iter() {
        events.push(thread_name(1.0 + kind as usize as f64, kind.name()));
    }
    let mut ordered: Vec<&RequestSpans> = requests.iter().collect();
    ordered.sort_by_key(|r| r.id);
    for request in ordered {
        events.push(JsonValue::Obj(vec![
            (
                "name".into(),
                JsonValue::Str(format!("miss {:#x}", request.addr)),
            ),
            ("cat".into(), JsonValue::Str("critpath".into())),
            ("ph".into(), JsonValue::Str("X".into())),
            ("pid".into(), JsonValue::Num(TRACE_PID)),
            ("tid".into(), JsonValue::Num(REQUEST_TID)),
            ("ts".into(), JsonValue::Num(us(request.issue.picos()))),
            (
                "dur".into(),
                JsonValue::Num(us((request.ready - request.issue).picos())),
            ),
            (
                "args".into(),
                JsonValue::Obj(vec![
                    (
                        "addr".into(),
                        JsonValue::Str(format!("{:#x}", request.addr)),
                    ),
                    (
                        "blame".into(),
                        JsonValue::Str(request.blame.name().into()),
                    ),
                ]),
            ),
        ]));
        events.push(flow_event("s", request.id, REQUEST_TID, request.issue.picos()));
        for child in &request.children {
            let tid = 1.0 + child.kind as usize as f64;
            let name = if child.kind == SpanKind::CounterFetch {
                format!("counter-fetch L{}", child.level)
            } else {
                child.kind.name().to_string()
            };
            events.push(JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str(name)),
                ("cat".into(), JsonValue::Str("critpath".into())),
                ("ph".into(), JsonValue::Str("X".into())),
                ("pid".into(), JsonValue::Num(TRACE_PID)),
                ("tid".into(), JsonValue::Num(tid)),
                ("ts".into(), JsonValue::Num(us(child.begin.picos()))),
                (
                    "dur".into(),
                    JsonValue::Num(us((child.end - child.begin).picos())),
                ),
            ]));
            events.push(flow_event("t", request.id, tid, child.begin.picos()));
        }
        events.push(flow_event("f", request.id, REQUEST_TID, request.ready.picos()));
    }
    let doc = JsonValue::Obj(vec![
        ("displayTimeUnit".into(), JsonValue::Str("ns".into())),
        ("traceEvents".into(), JsonValue::Arr(events)),
    ]);
    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

fn thread_name(tid: f64, name: &str) -> JsonValue {
    JsonValue::Obj(vec![
        ("ph".into(), JsonValue::Str("M".into())),
        ("pid".into(), JsonValue::Num(TRACE_PID)),
        ("tid".into(), JsonValue::Num(tid)),
        ("name".into(), JsonValue::Str("thread_name".into())),
        (
            "args".into(),
            JsonValue::Obj(vec![("name".into(), JsonValue::Str(name.into()))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::EventKind;
    use crate::ring::TraceEvent;
    use crate::span::{Blame, ChildSpan};
    use clme_types::{Time, TimeDelta};

    fn sample_ring() -> TraceRing {
        let mut ring = TraceRing::new(8);
        ring.push(TraceEvent {
            at: Time::from_picos(1_500_000),
            component: Component::Engine,
            event: EventKind::ReadMiss,
            addr: 0x1234,
            latency: TimeDelta::from_ns(87),
        });
        ring.push(TraceEvent {
            at: Time::from_picos(2_000_000),
            component: Component::Core,
            event: EventKind::RobStall,
            addr: 0,
            latency: TimeDelta::from_ns(3),
        });
        ring
    }

    #[test]
    fn emits_parseable_object_form() {
        let json = chrome_trace_json(&sample_ring());
        let doc = clme_types::json::parse(&json).expect("emitted trace must parse");
        let events = match doc.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        // 4 thread_name metadata events + 2 samples.
        assert_eq!(events.len(), 6);
        let first_real = &events[4];
        assert_eq!(first_real.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(
            first_real.get("name").and_then(|v| v.as_str()),
            Some("read-miss")
        );
        assert_eq!(first_real.get("ts").and_then(|v| v.as_f64()), Some(1.5));
        assert_eq!(first_real.get("dur").and_then(|v| v.as_f64()), Some(0.087));
        assert_eq!(
            first_real
                .get("args")
                .and_then(|a| a.get("addr"))
                .and_then(|v| v.as_str()),
            Some("0x1234")
        );
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(chrome_trace_json(&sample_ring()), chrome_trace_json(&sample_ring()));
    }

    #[test]
    fn every_event_and_component_name_round_trips() {
        // Exercise the full export path with every name the exporter can
        // emit: each event kind on each component. If anyone later adds a
        // name containing a quote, backslash, or control character, this
        // catches any mismatch between the writer's escaping and the
        // parser's unescaping.
        let mut ring = TraceRing::new(Component::ALL.len() * EventKind::ALL.len());
        for (i, &component) in Component::ALL.iter().enumerate() {
            for (j, &event) in EventKind::ALL.iter().enumerate() {
                ring.push(TraceEvent {
                    at: Time::from_picos(((i * EventKind::ALL.len() + j) as u64 + 1) * 1_000),
                    component,
                    event,
                    addr: 0x40 * j as u64,
                    latency: TimeDelta::from_ns(1),
                });
            }
        }
        let json = chrome_trace_json(&ring);
        let doc = clme_types::json::parse(&json).expect("trace with every name must parse");
        let events = match doc.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
            .collect();
        assert_eq!(names.len(), Component::ALL.len() * EventKind::ALL.len());
        for &event in EventKind::ALL.iter() {
            assert!(names.contains(&event.name()), "{} lost in export", event.name());
        }
    }

    fn sample_request(id: u64, addr: u64) -> RequestSpans {
        let ns = |v: u64| Time::from_picos(v * 1_000);
        RequestSpans {
            id,
            addr,
            issue: ns(10),
            data_arrival: ns(40),
            ready: ns(66),
            blame: Blame::Counter,
            children: vec![
                ChildSpan {
                    kind: SpanKind::CacheLookup,
                    level: 0,
                    begin: ns(2),
                    end: ns(10),
                },
                ChildSpan {
                    kind: SpanKind::DataDram,
                    level: 0,
                    begin: ns(10),
                    end: ns(40),
                },
                ChildSpan {
                    kind: SpanKind::CounterFetch,
                    level: 2,
                    begin: ns(10),
                    end: ns(60),
                },
                ChildSpan {
                    kind: SpanKind::PadMemo,
                    level: 0,
                    begin: ns(60),
                    end: ns(65),
                },
            ],
        }
    }

    #[test]
    fn span_flow_export_connects_requests_with_flow_arrows() {
        let requests = vec![sample_request(3, 0x40), sample_request(1, 0x80)];
        let json = span_flow_json("table1/counter-mode/bfs", &requests);
        let doc = clme_types::json::parse(&json).expect("flow trace must parse");
        let events = match doc.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let phase = |e: &JsonValue| e.get("ph").and_then(|v| v.as_str()).unwrap().to_string();
        let count = |ph: &str| events.iter().filter(|e| phase(e) == ph).count();
        // Per request: one "s", one "t" per child, one "f".
        assert_eq!(count("s"), 2);
        assert_eq!(count("t"), 8);
        assert_eq!(count("f"), 2);
        // Requests are ordered by id regardless of reservoir slot order.
        let first_x = events.iter().find(|e| phase(*e) == "X").unwrap();
        assert_eq!(
            first_x.get("name").and_then(|v| v.as_str()),
            Some("miss 0x80")
        );
        // Flow events carry the request id and the spec's end binding.
        let finish = events.iter().find(|e| phase(*e) == "f").unwrap();
        assert_eq!(finish.get("bp").and_then(|v| v.as_str()), Some("e"));
        assert_eq!(finish.get("id").and_then(|v| v.as_f64()), Some(1.0));
        // Tree level reaches the child slice name.
        assert!(json.contains("counter-fetch L2"));
        // Blame reaches the request slice args.
        assert!(json.contains("counter-bound"));
        // Deterministic output.
        assert_eq!(json, span_flow_json("table1/counter-mode/bfs", &requests));
    }

    #[test]
    fn span_flow_export_escapes_hostile_addresses_and_labels() {
        // Addresses are adversarial u64s (formatted, never raw), and the
        // cell label is caller-controlled text: both must round-trip
        // through escaping.
        let mut request = sample_request(0, u64::MAX);
        request.children.clear();
        let hostile_label = "cell \"x\"\\y\n\u{2}z";
        let json = span_flow_json(hostile_label, &[request]);
        assert!(
            json.bytes().all(|b| b >= 0x20 || b == b'\n'),
            "raw control bytes leaked into the flow trace"
        );
        let doc = clme_types::json::parse(&json).expect("hostile flow trace must parse");
        let events = match doc.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let process_name = events
            .first()
            .and_then(|e| e.get("args"))
            .and_then(|a| a.get("name"))
            .and_then(|v| v.as_str());
        assert_eq!(process_name, Some(hostile_label));
        let miss = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .expect("request slice present");
        assert_eq!(
            miss.get("name").and_then(|v| v.as_str()),
            Some("miss 0xffffffffffffffff")
        );
    }

    #[test]
    fn hostile_names_are_escaped_not_leaked() {
        // The exporter builds its documents from JsonValue, so a hostile
        // track name (quotes, backslashes, control characters) must come
        // out escaped, exactly as the thread_name metadata events are
        // built in chrome_trace_json.
        let hostile = "dram \"bank\"\\row\n\u{1}track";
        let meta = JsonValue::Obj(vec![
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::Num(TRACE_PID)),
            ("tid".into(), JsonValue::Num(0.0)),
            ("name".into(), JsonValue::Str("thread_name".into())),
            (
                "args".into(),
                JsonValue::Obj(vec![("name".into(), JsonValue::Str(hostile.into()))]),
            ),
        ]);
        let doc = JsonValue::Obj(vec![(
            "traceEvents".into(),
            JsonValue::Arr(vec![meta]),
        )]);
        let text = doc.to_pretty();
        assert!(
            text.bytes().all(|b| b >= 0x20 || b == b'\n'),
            "raw control bytes leaked into the trace: {text:?}"
        );
        assert!(text.contains(r#"\"bank\""#), "quotes must be escaped");
        assert!(text.contains(r#"\\row"#), "backslashes must be escaped");
        assert!(text.contains(r#"\u0001"#), "control chars must be \\u-escaped");
        let parsed = clme_types::json::parse(&text).expect("hostile trace must still parse");
        let round_tripped = parsed
            .get("traceEvents")
            .and_then(|e| match e {
                JsonValue::Arr(items) => items.first(),
                _ => None,
            })
            .and_then(|e| e.get("args"))
            .and_then(|a| a.get("name"))
            .and_then(|v| v.as_str());
        assert_eq!(round_tripped, Some(hostile));
    }
}
