//! Zero-overhead-when-off observability for the simulator stack.
//!
//! Every timed component (engines, DRAM, caches, the interval core) takes a
//! `&mut dyn` [`TraceSink`] on its `_obs` entry points. The default
//! [`NopSink`] implements every hook as an empty inline method, so the
//! un-instrumented call paths keep their exact behaviour and cost; the
//! [`Recorder`] sink accumulates:
//!
//! * [`Log2Histogram`] — fixed 64-bucket power-of-two picosecond latency
//!   histograms, one per pipeline [`Stage`],
//! * [`EventCounters`] — monotonic counters, one per [`EventKind`],
//! * [`TraceRing`] — a bounded ring of `(cycle, component, event, addr,
//!   latency)` tuples, exportable as Chrome `trace_event` JSON
//!   ([`chrome_trace_json`]) viewable in Perfetto / `about:tracing`.
//!
//! # Examples
//!
//! ```
//! use clme_obs::{Recorder, Stage, TraceSink};
//! use clme_types::{Time, TimeDelta};
//!
//! let mut rec = Recorder::new();
//! rec.latency(Stage::Dram, TimeDelta::from_ns(46));
//! assert_eq!(rec.stage(Stage::Dram).count(), 1);
//! ```

pub mod chrome;
pub mod counters;
pub mod flight;
pub mod hist;
pub mod prom;
pub mod registry;
pub mod ring;
pub mod series;
pub mod sink;
pub mod span;
pub mod tenant;

pub use chrome::{chrome_trace_json, span_flow_json};
pub use counters::{Component, EventCounters, EventKind};
pub use flight::{FlightEvent, FlightRing, FlightSnapshot, FLIGHT_SHARDS};
pub use hist::Log2Histogram;
pub use registry::{
    Counter, Gauge, MetricKind, MetricsError, Registry, Sample, SampleValue, ShardedHistogram,
    HIST_SHARDS,
};
pub use ring::{TraceEvent, TraceRing};
pub use series::{
    EpochSample, EpochSeries, SeriesRecorder, StageSample, DEFAULT_EPOCH_CYCLES,
};
pub use sink::{NopSink, Recorder, Stage, TraceSink, DEFAULT_RING_CAPACITY, STAGES};
pub use span::{
    Blame, BlameTally, BlameTracker, ChildSpan, RequestSpans, SpanKind, SpanTracer,
    BLAME_KINDS, DEFAULT_SPAN_SAMPLES, SPAN_KINDS,
};
pub use tenant::{
    tenant_label, HeavyHitter, SpaceSaving, TenantScope, TenantSketch, OTHER_TENANT,
    TENANT_SKETCH_SHARDS,
};
