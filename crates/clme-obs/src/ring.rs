//! A bounded ring buffer of trace events.
//!
//! Traces of long runs would otherwise grow without bound; the ring keeps
//! the most recent `capacity` events and counts how many were dropped, so
//! the Chrome export always stays at a predictable size.

use crate::counters::{Component, EventKind};
use clme_types::{Time, TimeDelta};

/// One observed event: when, where, what, which address, how long.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event began.
    pub at: Time,
    /// Component that observed it.
    pub component: Component,
    /// What happened.
    pub event: EventKind,
    /// Block address involved (0 when not address-shaped).
    pub addr: u64,
    /// Duration attributed to the event ([`TimeDelta::ZERO`] for instants).
    pub latency: TimeDelta,
}

/// Bounded ring of [`TraceEvent`]s; overwrites the oldest when full.
///
/// # Examples
///
/// ```
/// use clme_obs::{Component, EventKind, TraceEvent, TraceRing};
/// use clme_types::{Time, TimeDelta};
///
/// let mut ring = TraceRing::new(2);
/// for i in 0..3 {
///     ring.push(TraceEvent {
///         at: Time::from_picos(i),
///         component: Component::Dram,
///         event: EventKind::RowHit,
///         addr: i,
///         latency: TimeDelta::ZERO,
///     });
/// }
/// let kept: Vec<u64> = ring.iter().map(|e| e.addr).collect();
/// assert_eq!(kept, vec![1, 2]); // oldest event dropped
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TraceRing {
    slots: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the next slot to write (wraps).
    head: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let split = if self.slots.len() < self.capacity {
            0
        } else {
            self.head
        };
        self.slots[split..].iter().chain(self.slots[..split].iter())
    }

    /// Empties the ring (capacity is kept).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            at: Time::from_picos(i * 10),
            component: Component::Engine,
            event: EventKind::ReadMiss,
            addr: i,
            latency: TimeDelta::from_picos(i),
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut ring = TraceRing::new(4);
        for i in 0..4 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);
        let order: Vec<u64> = ring.iter().map(|e| e.addr).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);

        // Push 3 more: 0, 1, 2 are overwritten.
        for i in 4..7 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 3);
        let order: Vec<u64> = ring.iter().map(|e| e.addr).collect();
        assert_eq!(order, vec![3, 4, 5, 6], "iteration stays oldest-first across the wrap");
    }

    #[test]
    fn wraps_many_times() {
        let mut ring = TraceRing::new(3);
        for i in 0..31 {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped(), 28);
        let order: Vec<u64> = ring.iter().map(|e| e.addr).collect();
        assert_eq!(order, vec![28, 29, 30]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut ring = TraceRing::new(0);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.iter().count(), 1);
        assert_eq!(ring.iter().next().unwrap().addr, 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut ring = TraceRing::new(2);
        ring.push(ev(1));
        ring.push(ev(2));
        ring.push(ev(3));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        ring.push(ev(9));
        assert_eq!(ring.iter().next().unwrap().addr, 9);
    }
}
