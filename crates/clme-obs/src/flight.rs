//! A lock-free flight recorder: the always-on black box.
//!
//! [`TraceRing`](crate::TraceRing) is `&mut`-threaded and belongs to one
//! simulation loop; the flight recorder is its production twin, shaped
//! like [`ShardedHistogram`](crate::ShardedHistogram): a bounded ring of
//! compact structured events striped across cache-line-aligned per-thread
//! shards, recorded with a handful of relaxed atomics and no clock reads,
//! merged into one deterministic oldest-first timeline only when a
//! [`snapshot`](FlightRing::snapshot) is taken (normally: post-mortem,
//! after an integrity violation).
//!
//! Events are deliberately opaque here — a `kind` discriminant plus two
//! `u64` payload words — so the crate stays independent of what is being
//! recorded; `clme-mem` defines the kind vocabulary and renders it.
//!
//! # Examples
//!
//! ```
//! use clme_obs::flight::FlightRing;
//!
//! let ring = FlightRing::new(64);
//! ring.record(1, 7, 0);
//! ring.record(2, 7, 1);
//! let snap = ring.snapshot();
//! assert_eq!(snap.events.len(), 2);
//! assert!(snap.events[0].seq < snap.events[1].seq);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::registry::thread_slot;

/// Number of independent shards in a [`FlightRing`]. A power of two so
/// the per-thread slot maps with a mask, matching
/// [`HIST_SHARDS`](crate::HIST_SHARDS).
pub const FLIGHT_SHARDS: usize = 8;

/// Sentinel sequence number marking a slot empty or mid-write.
const SEQ_EMPTY: u64 = u64::MAX;

/// One recorded event, as returned by [`FlightRing::snapshot`].
///
/// `seq` is a global order stamp (claimed from one relaxed counter at
/// record time, *not* a clock), so merged timelines sort into the exact
/// record order without any wall-time nondeterminism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global record-order stamp (0 = first event ever recorded).
    pub seq: u64,
    /// Caller-defined discriminant (what happened).
    pub kind: u16,
    /// First payload word (typically a page id or address).
    pub a: u64,
    /// Second payload word (typically a count, class, or outcome).
    pub b: u64,
}

/// One event slot. The writer publishes `seq` last (release) and the
/// snapshot reader validates it seqlock-style: load `seq`, read the
/// payload, re-load `seq` — a slot that changed mid-read is skipped
/// rather than surfaced torn.
struct FlightSlot {
    seq: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl FlightSlot {
    fn new() -> FlightSlot {
        FlightSlot {
            seq: AtomicU64::new(SEQ_EMPTY),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One recorder stripe, padded to its own cache lines so two threads
/// recording into adjacent shards never false-share the cursors.
#[repr(align(128))]
struct FlightShard {
    /// Total events ever recorded into this shard (wraps over `slots`).
    cursor: AtomicUsize,
    slots: Box<[FlightSlot]>,
}

impl FlightShard {
    fn new(per_shard: usize) -> FlightShard {
        FlightShard {
            cursor: AtomicUsize::new(0),
            slots: (0..per_shard).map(|_| FlightSlot::new()).collect(),
        }
    }
}

/// A merged, ordered view of everything the ring currently retains.
#[derive(Clone, Debug, Default)]
pub struct FlightSnapshot {
    /// Retained events, sorted by `seq` ascending (oldest first).
    pub events: Vec<FlightEvent>,
    /// Events overwritten because their shard was full.
    pub dropped: u64,
    /// Total events ever recorded.
    pub recorded: u64,
    /// Maximum events the ring retains across all shards.
    pub capacity: usize,
}

/// A bounded, lock-free, per-thread-sharded event ring.
///
/// Recording is allocation-free and clock-free: one relaxed `fetch_add`
/// on the global sequence, one on the shard cursor, three relaxed payload
/// stores and one release `seq` store — the same cost class as a few
/// [`Counter`](crate::Counter) bumps, cheap enough to live on the
/// `clme-mem` hot paths under the 3% telemetry budget.
pub struct FlightRing {
    shards: Box<[FlightShard]>,
    per_shard: usize,
    seq: AtomicU64,
}

impl FlightRing {
    /// Creates a ring retaining at least `capacity` events (rounded up to
    /// a multiple of [`FLIGHT_SHARDS`], min one slot per shard).
    pub fn new(capacity: usize) -> FlightRing {
        let per_shard = capacity.div_ceil(FLIGHT_SHARDS).max(1);
        FlightRing {
            shards: (0..FLIGHT_SHARDS).map(|_| FlightShard::new(per_shard)).collect(),
            per_shard,
            seq: AtomicU64::new(0),
        }
    }

    /// Maximum events retained across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard * FLIGHT_SHARDS
    }

    /// Records one event. Lock-free, allocation-free, no clock read.
    #[inline]
    pub fn record(&self, kind: u16, a: u64, b: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[thread_slot() & (FLIGHT_SHARDS - 1)];
        let at = shard.cursor.fetch_add(1, Ordering::Relaxed) % self.per_shard;
        let slot = &shard.slots[at];
        // Invalidate first so a concurrent snapshot never pairs the new
        // payload with the old sequence stamp.
        slot.seq.store(SEQ_EMPTY, Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Merges every shard into one timeline sorted oldest-first by the
    /// global sequence stamp. Safe to take while recorders are live: a
    /// slot being overwritten mid-read fails its seqlock check and is
    /// skipped (it would have been evicted moments later anyway).
    pub fn snapshot(&self) -> FlightSnapshot {
        let mut events = Vec::with_capacity(self.capacity());
        let mut dropped = 0u64;
        for shard in self.shards.iter() {
            let pushed = shard.cursor.load(Ordering::Relaxed);
            dropped += pushed.saturating_sub(self.per_shard) as u64;
            for slot in shard.slots.iter() {
                let before = slot.seq.load(Ordering::Acquire);
                if before == SEQ_EMPTY {
                    continue;
                }
                let kind = slot.kind.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                if slot.seq.load(Ordering::Acquire) != before {
                    continue;
                }
                events.push(FlightEvent {
                    seq: before,
                    kind: kind as u16,
                    a,
                    b,
                });
            }
        }
        events.sort_unstable_by_key(|e| e.seq);
        FlightSnapshot {
            events,
            dropped,
            recorded: self.recorded(),
            capacity: self.capacity(),
        }
    }

    /// Empties the ring (capacity is kept). Callers must be quiescent —
    /// events recorded concurrently with a clear may survive it.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.cursor.store(0, Ordering::Relaxed);
            for slot in shard.slots.iter() {
                slot.seq.store(SEQ_EMPTY, Ordering::Release);
            }
        }
        self.seq.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for FlightRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_single_thread() {
        // One thread records into one shard, so size the ring to keep
        // per_shard (capacity / FLIGHT_SHARDS) above the event count.
        let ring = FlightRing::new(128);
        for i in 0..10u64 {
            ring.record(3, i, i * 2);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 10);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.recorded, 10);
        let payload: Vec<(u64, u64, u64)> =
            snap.events.iter().map(|e| (e.seq, e.a, e.b)).collect();
        let want: Vec<(u64, u64, u64)> = (0..10).map(|i| (i, i, i * 2)).collect();
        assert_eq!(payload, want, "timeline sorts into record order");
    }

    #[test]
    fn wraps_and_counts_dropped() {
        // One thread lands on one shard, so its view wraps at per_shard.
        let ring = FlightRing::new(8); // per_shard = 1
        for i in 0..5u64 {
            ring.record(1, i, 0);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 1, "single shard retains one slot");
        assert_eq!(snap.events[0].a, 4, "the newest survives");
        assert_eq!(snap.dropped, 4);
        assert_eq!(snap.recorded, 5);
    }

    #[test]
    fn capacity_floor_is_one_slot_per_shard() {
        let ring = FlightRing::new(0);
        assert_eq!(ring.capacity(), FLIGHT_SHARDS);
        ring.record(9, 1, 2);
        assert_eq!(ring.snapshot().events.len(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let ring = FlightRing::new(32);
        ring.record(1, 1, 1);
        ring.record(2, 2, 2);
        ring.clear();
        let snap = ring.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.capacity, 32);
        ring.record(7, 7, 7);
        assert_eq!(ring.snapshot().events[0].kind, 7);
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let ring = FlightRing::new(4096);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        ring.record(t as u16, t, i);
                    }
                });
            }
        });
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 400);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 400);
        // Sequence stamps are unique and the sort is total, so the merged
        // timeline is deterministic given the same per-thread payloads.
        for pair in snap.events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        // Each thread's own events keep their program order.
        for t in 0..4u64 {
            let bs: Vec<u64> =
                snap.events.iter().filter(|e| e.a == t).map(|e| e.b).collect();
            let want: Vec<u64> = (0..100).collect();
            assert_eq!(bs, want, "thread {t} subsequence is in program order");
        }
    }
}
