//! Fixed-bucket log2 latency histogram.
//!
//! Latencies in this simulator span five orders of magnitude (sub-ns AES
//! stages to tens-of-µs queueing pathologies), so linear buckets either
//! lose the tail or the head. A power-of-two bucketing keeps both with a
//! single 64-slot array and no allocation on the record path.

use clme_types::TimeDelta;

/// Number of buckets; covers every representable `u64` picosecond value.
pub const LOG2_BUCKETS: usize = 64;

/// A latency histogram with power-of-two picosecond buckets.
///
/// Bucket `0` holds exact zeros; bucket `i >= 1` holds latencies in
/// `[2^(i-1), 2^i)` picoseconds. The exact sum is kept alongside so the
/// mean is not quantised.
///
/// # Examples
///
/// ```
/// use clme_obs::Log2Histogram;
/// use clme_types::TimeDelta;
///
/// let mut h = Log2Histogram::new();
/// h.record(TimeDelta::from_picos(3));
/// assert_eq!(h.bucket_count(2), 1); // [2, 4) ps
/// assert_eq!(h.mean_ps(), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum_ps: u128,
    max_ps: u64,
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Log2Histogram {
        Log2Histogram {
            counts: [0; LOG2_BUCKETS],
            total: 0,
            sum_ps: 0,
            max_ps: 0,
        }
    }

    /// Bucket index for a picosecond value: 0 for 0, else
    /// `64 - leading_zeros(ps)`, clamped so the last bucket also absorbs
    /// values at and above `2^63`.
    #[inline]
    pub fn bucket_of(ps: u64) -> usize {
        ((64 - ps.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: TimeDelta) {
        let ps = latency.picos();
        self.counts[Self::bucket_of(ps)] += 1;
        self.total += 1;
        self.sum_ps += ps as u128;
        self.max_ps = self.max_ps.max(ps);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of samples in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Inclusive lower bound of bucket `i`, in picoseconds.
    pub fn bucket_lo_ps(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Exclusive upper bound of bucket `i`, in picoseconds (saturating for
    /// the last bucket).
    pub fn bucket_hi_ps(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= 63 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Exact mean of the recorded samples, in picoseconds (0 when empty).
    pub fn mean_ps(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ps as f64 / self.total as f64
        }
    }

    /// Largest recorded sample, in picoseconds.
    pub fn max_ps(&self) -> u64 {
        self.max_ps
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`), in picoseconds: the
    /// upper bound of the first bucket whose cumulative count reaches
    /// `p * total`, clamped to the observed maximum. Returns 0 when empty.
    pub fn percentile_ps(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0;
        for i in 0..LOG2_BUCKETS {
            seen += self.counts[i];
            if seen >= target {
                // The top bucket's bound is already saturated (inclusive);
                // subtracting 1 there would under-report a u64::MAX sample.
                let bound = if i == LOG2_BUCKETS - 1 {
                    u64::MAX
                } else {
                    Self::bucket_hi_ps(i) - 1
                };
                return bound.min(self.max_ps);
            }
        }
        self.max_ps
    }

    /// Resets all buckets to empty.
    pub fn clear(&mut self) {
        *self = Log2Histogram::new();
    }

    /// Builds a histogram from raw bucket counts plus the exact sum and
    /// maximum. The total is recomputed from `counts`. This is the merge
    /// target for the atomic sharded histogram in [`crate::registry`],
    /// which accumulates the same representation across threads and folds
    /// it back into the single-threaded type for reporting.
    pub fn from_parts(counts: [u64; LOG2_BUCKETS], sum_ps: u128, max_ps: u64) -> Log2Histogram {
        let total = counts.iter().sum();
        Log2Histogram {
            counts,
            total,
            sum_ps,
            max_ps,
        }
    }

    /// The histogram of samples recorded since `baseline` was cloned off
    /// this histogram: per-bucket count differences plus exact total/sum
    /// differences. Used by the epoch sampler to turn a cumulative
    /// histogram into per-epoch deltas without a second record path.
    ///
    /// The delta's maximum is exact when the global maximum moved inside
    /// the delta window; otherwise it is the tightest bucket upper bound,
    /// clamped to the cumulative maximum.
    ///
    /// Every subtraction saturates at zero: a `baseline` that is *not*
    /// an earlier state of `self` (a snapshot that outlived a purge,
    /// reset, or was taken from another histogram) yields an
    /// empty-or-smaller delta instead of underflowing into garbage
    /// percentiles.
    pub fn delta_since(&self, baseline: &Log2Histogram) -> Log2Histogram {
        let mut counts = [0u64; LOG2_BUCKETS];
        let mut highest = None;
        for i in 0..LOG2_BUCKETS {
            counts[i] = self.counts[i].saturating_sub(baseline.counts[i]);
            if counts[i] > 0 {
                highest = Some(i);
            }
        }
        let max_ps = if self.max_ps > baseline.max_ps {
            self.max_ps
        } else {
            highest
                .map(|i| Self::bucket_hi_ps(i).saturating_sub(1).min(self.max_ps))
                .unwrap_or(0)
        };
        Log2Histogram {
            counts,
            total: counts.iter().sum(),
            sum_ps: self.sum_ps.saturating_sub(baseline.sum_ps),
            max_ps,
        }
    }
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 -> bucket 0; [2^(i-1), 2^i) -> bucket i.
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        for i in 1..62usize {
            let lo = 1u64 << (i - 1);
            let hi = 1u64 << i;
            assert_eq!(Log2Histogram::bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(Log2Histogram::bucket_of(hi - 1), i, "upper edge of bucket {i}");
            assert_eq!(Log2Histogram::bucket_of(hi), i + 1, "next bucket after {i}");
            assert_eq!(Log2Histogram::bucket_lo_ps(i), lo);
            assert_eq!(Log2Histogram::bucket_hi_ps(i), hi);
        }
        // The last bucket absorbs everything at and above 2^62.
        assert_eq!(Log2Histogram::bucket_of(1u64 << 62), 63);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 63);
        assert_eq!(Log2Histogram::bucket_hi_ps(63), u64::MAX);
    }

    #[test]
    fn record_and_summaries() {
        let mut h = Log2Histogram::new();
        for ps in [0u64, 1, 2, 3, 4, 1000, 1024] {
            h.record(TimeDelta::from_picos(ps));
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(3), 1); // 4
        assert_eq!(h.bucket_count(10), 1); // 1000 in [512, 1024)
        assert_eq!(h.bucket_count(11), 1); // 1024 in [1024, 2048)
        assert_eq!(h.max_ps(), 1024);
        let mean = (0 + 1 + 2 + 3 + 4 + 1000 + 1024) as f64 / 7.0;
        assert!((h.mean_ps() - mean).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotonic_and_clamped() {
        let mut h = Log2Histogram::new();
        for ps in 1..=100u64 {
            h.record(TimeDelta::from_picos(ps));
        }
        let p50 = h.percentile_ps(0.5);
        let p99 = h.percentile_ps(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max_ps());
        assert_eq!(h.percentile_ps(1.0), h.max_ps());
        assert_eq!(Log2Histogram::new().percentile_ps(0.5), 0);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero_only() {
        let mut h = Log2Histogram::new();
        h.record(TimeDelta::ZERO);
        h.record(TimeDelta::ZERO);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_count(0), 2);
        for i in 1..LOG2_BUCKETS {
            assert_eq!(h.bucket_count(i), 0, "bucket {i} must stay empty");
        }
        assert_eq!(h.mean_ps(), 0.0);
        assert_eq!(h.max_ps(), 0);
        // Every percentile of an all-zero histogram is zero.
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile_ps(p), 0);
        }
    }

    #[test]
    fn u64_max_saturates_into_the_top_bucket() {
        let mut h = Log2Histogram::new();
        h.record(TimeDelta::from_picos(u64::MAX));
        h.record(TimeDelta::from_picos(u64::MAX - 1));
        h.record(TimeDelta::from_picos(1u64 << 63));
        assert_eq!(h.bucket_count(LOG2_BUCKETS - 1), 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ps(), u64::MAX);
        // The exact sum survives in the u128 accumulator (no wrap).
        let expected = u64::MAX as u128 + (u64::MAX - 1) as u128 + (1u128 << 63);
        assert!((h.mean_ps() - expected as f64 / 3.0).abs() / h.mean_ps() < 1e-12);
        // Percentiles clamp to the observed maximum, not the bucket bound.
        assert_eq!(h.percentile_ps(1.0), u64::MAX);
    }

    #[test]
    fn single_sample_percentiles_return_that_sample() {
        // A one-sample histogram has only one defensible answer for any
        // percentile: the sample itself. The bucket upper bound is
        // clamped to the observed maximum, which for a single sample is
        // exact at every p.
        for ps in [1u64, 3, 1000, 13_750, u64::MAX] {
            let mut h = Log2Histogram::new();
            h.record(TimeDelta::from_picos(ps));
            for p in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.percentile_ps(p), ps, "p={p} of single sample {ps}");
            }
        }
    }

    #[test]
    fn delta_since_subtracts_buckets_and_sums() {
        let mut h = Log2Histogram::new();
        h.record(TimeDelta::from_picos(3));
        h.record(TimeDelta::from_picos(100));
        let baseline = h.clone();
        h.record(TimeDelta::from_picos(5));
        h.record(TimeDelta::from_picos(1000));
        let delta = h.delta_since(&baseline);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.bucket_count(3), 1); // 5 in [4, 8)
        assert_eq!(delta.bucket_count(10), 1); // 1000 in [512, 1024)
        assert_eq!(delta.mean_ps(), (5 + 1000) as f64 / 2.0);
        // 1000 raised the global max inside the window: exact.
        assert_eq!(delta.max_ps(), 1000);
        // A quiet window deltas to an empty histogram.
        let quiet = h.delta_since(&h.clone());
        assert_eq!(quiet.count(), 0);
        assert_eq!(quiet.max_ps(), 0);
    }

    #[test]
    fn delta_since_bounds_max_when_global_max_is_stale() {
        let mut h = Log2Histogram::new();
        h.record(TimeDelta::from_picos(1_000_000)); // sets the global max
        let baseline = h.clone();
        h.record(TimeDelta::from_picos(70)); // in [64, 128)
        let delta = h.delta_since(&baseline);
        assert_eq!(delta.count(), 1);
        // True epoch max (70) is unknowable from buckets; the bound is
        // the bucket's upper edge, clamped below the cumulative max.
        assert_eq!(delta.max_ps(), 127);
    }

    #[test]
    fn delta_since_clamps_when_baseline_is_newer() {
        // A snapshot taken *after* more traffic (or after a purge reset
        // the live histogram) must clamp to zero, not underflow.
        let mut live = Log2Histogram::new();
        live.record(TimeDelta::from_picos(100));
        let mut newer = live.clone();
        newer.record(TimeDelta::from_picos(100));
        newer.record(TimeDelta::from_picos(5000));
        let delta = live.delta_since(&newer);
        assert_eq!(delta.count(), 0);
        assert_eq!(delta.mean_ps(), 0.0);
        assert_eq!(delta.max_ps(), 0);
        for p in [0.5, 0.99, 1.0] {
            assert_eq!(delta.percentile_ps(p), 0);
        }
        // Post-purge: live restarts from empty while the snapshot still
        // holds history. The delta is the new traffic only where it
        // exceeds the stale baseline, never a wrapped count.
        let mut purged = Log2Histogram::new();
        purged.record(TimeDelta::from_picos(7));
        let delta = purged.delta_since(&newer);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.bucket_count(3), 1); // 7 in [4, 8)
        // Internal consistency: total always equals the bucket sum.
        let summed: u64 = (0..LOG2_BUCKETS).map(|i| delta.bucket_count(i)).sum();
        assert_eq!(delta.count(), summed);
    }

    #[test]
    fn clear_empties() {
        let mut h = Log2Histogram::new();
        h.record(TimeDelta::from_ns(5));
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ps(), 0.0);
        assert_eq!(h, Log2Histogram::new());
    }
}
