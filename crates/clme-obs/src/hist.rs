//! Fixed-bucket log2 latency histogram.
//!
//! Latencies in this simulator span five orders of magnitude (sub-ns AES
//! stages to tens-of-µs queueing pathologies), so linear buckets either
//! lose the tail or the head. A power-of-two bucketing keeps both with a
//! single 64-slot array and no allocation on the record path.

use clme_types::TimeDelta;

/// Number of buckets; covers every representable `u64` picosecond value.
pub const LOG2_BUCKETS: usize = 64;

/// A latency histogram with power-of-two picosecond buckets.
///
/// Bucket `0` holds exact zeros; bucket `i >= 1` holds latencies in
/// `[2^(i-1), 2^i)` picoseconds. The exact sum is kept alongside so the
/// mean is not quantised.
///
/// # Examples
///
/// ```
/// use clme_obs::Log2Histogram;
/// use clme_types::TimeDelta;
///
/// let mut h = Log2Histogram::new();
/// h.record(TimeDelta::from_picos(3));
/// assert_eq!(h.bucket_count(2), 1); // [2, 4) ps
/// assert_eq!(h.mean_ps(), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum_ps: u128,
    max_ps: u64,
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Log2Histogram {
        Log2Histogram {
            counts: [0; LOG2_BUCKETS],
            total: 0,
            sum_ps: 0,
            max_ps: 0,
        }
    }

    /// Bucket index for a picosecond value: 0 for 0, else
    /// `64 - leading_zeros(ps)`, clamped so the last bucket also absorbs
    /// values at and above `2^63`.
    #[inline]
    pub fn bucket_of(ps: u64) -> usize {
        ((64 - ps.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: TimeDelta) {
        let ps = latency.picos();
        self.counts[Self::bucket_of(ps)] += 1;
        self.total += 1;
        self.sum_ps += ps as u128;
        self.max_ps = self.max_ps.max(ps);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of samples in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Inclusive lower bound of bucket `i`, in picoseconds.
    pub fn bucket_lo_ps(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Exclusive upper bound of bucket `i`, in picoseconds (saturating for
    /// the last bucket).
    pub fn bucket_hi_ps(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= 63 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Exact mean of the recorded samples, in picoseconds (0 when empty).
    pub fn mean_ps(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ps as f64 / self.total as f64
        }
    }

    /// Largest recorded sample, in picoseconds.
    pub fn max_ps(&self) -> u64 {
        self.max_ps
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`), in picoseconds: the
    /// upper bound of the first bucket whose cumulative count reaches
    /// `p * total`, clamped to the observed maximum. Returns 0 when empty.
    pub fn percentile_ps(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0;
        for i in 0..LOG2_BUCKETS {
            seen += self.counts[i];
            if seen >= target {
                return Self::bucket_hi_ps(i).saturating_sub(1).min(self.max_ps);
            }
        }
        self.max_ps
    }

    /// Resets all buckets to empty.
    pub fn clear(&mut self) {
        *self = Log2Histogram::new();
    }
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 -> bucket 0; [2^(i-1), 2^i) -> bucket i.
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        for i in 1..62usize {
            let lo = 1u64 << (i - 1);
            let hi = 1u64 << i;
            assert_eq!(Log2Histogram::bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(Log2Histogram::bucket_of(hi - 1), i, "upper edge of bucket {i}");
            assert_eq!(Log2Histogram::bucket_of(hi), i + 1, "next bucket after {i}");
            assert_eq!(Log2Histogram::bucket_lo_ps(i), lo);
            assert_eq!(Log2Histogram::bucket_hi_ps(i), hi);
        }
        // The last bucket absorbs everything at and above 2^62.
        assert_eq!(Log2Histogram::bucket_of(1u64 << 62), 63);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 63);
        assert_eq!(Log2Histogram::bucket_hi_ps(63), u64::MAX);
    }

    #[test]
    fn record_and_summaries() {
        let mut h = Log2Histogram::new();
        for ps in [0u64, 1, 2, 3, 4, 1000, 1024] {
            h.record(TimeDelta::from_picos(ps));
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(3), 1); // 4
        assert_eq!(h.bucket_count(10), 1); // 1000 in [512, 1024)
        assert_eq!(h.bucket_count(11), 1); // 1024 in [1024, 2048)
        assert_eq!(h.max_ps(), 1024);
        let mean = (0 + 1 + 2 + 3 + 4 + 1000 + 1024) as f64 / 7.0;
        assert!((h.mean_ps() - mean).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotonic_and_clamped() {
        let mut h = Log2Histogram::new();
        for ps in 1..=100u64 {
            h.record(TimeDelta::from_picos(ps));
        }
        let p50 = h.percentile_ps(0.5);
        let p99 = h.percentile_ps(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max_ps());
        assert_eq!(h.percentile_ps(1.0), h.max_ps());
        assert_eq!(Log2Histogram::new().percentile_ps(0.5), 0);
    }

    #[test]
    fn clear_empties() {
        let mut h = Log2Histogram::new();
        h.record(TimeDelta::from_ns(5));
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ps(), 0.0);
        assert_eq!(h, Log2Histogram::new());
    }
}
