//! Always-on, atomics-based metrics primitives and a named registry.
//!
//! The [`Recorder`](crate::Recorder) sink is `&mut`-threaded and belongs to
//! one simulation loop; production telemetry for the `clme-mem` library
//! needs the opposite shape: shared handles that many threads bump
//! concurrently with relaxed atomics, merged into plain
//! [`Log2Histogram`]s only when a snapshot is taken.
//!
//! Three primitives:
//!
//! * [`Counter`] — monotonic `AtomicU64`,
//! * [`Gauge`] — last-write-wins `AtomicU64`,
//! * [`ShardedHistogram`] — log2 picosecond histogram striped across
//!   cache-line-aligned shards, indexed by a per-thread slot so
//!   concurrent recorders do not contend on one line; [`merge`]
//!   ([`ShardedHistogram::merge`]) folds the shards into a
//!   [`Log2Histogram`] for percentiles and deltas.
//!
//! [`Registry`] names the handles. Metric and label names are validated at
//! registration against the Prometheus grammar and rejected with a typed
//! [`MetricsError`] — a hostile name never reaches the exposition writer.
//!
//! # Examples
//!
//! ```
//! use clme_obs::registry::{Registry, MetricsError};
//!
//! let reg = Registry::new();
//! let ops = reg.counter("clme_demo_ops_total", "demo ops", &[]).unwrap();
//! ops.inc();
//! assert_eq!(ops.get(), 1);
//! assert!(matches!(
//!     reg.counter("0bad", "nope", &[]),
//!     Err(MetricsError::InvalidMetricName(_))
//! ));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::{Log2Histogram, LOG2_BUCKETS};
use clme_types::TimeDelta;

/// A monotonically increasing counter. All operations are relaxed: the
/// value is a statistic, not a synchronisation edge.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (a `u64` the owner sets to the current level:
/// pages swept, sweep in progress, key age in milliseconds, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one to the level.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of independent shards in a [`ShardedHistogram`]. A power of two
/// so the per-thread slot maps with a mask. Eight lines bounds the merge
/// cost while keeping the common 2–16-thread benches contention-free.
pub const HIST_SHARDS: usize = 8;

/// One histogram stripe, padded to its own cache lines so two threads
/// recording into adjacent shards never false-share.
#[repr(align(128))]
struct HistShard {
    counts: [AtomicU64; LOG2_BUCKETS],
    sum_ps: AtomicU64,
    max_ps: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        const Z: AtomicU64 = AtomicU64::new(0);
        HistShard {
            counts: [Z; LOG2_BUCKETS],
            sum_ps: AtomicU64::new(0),
            max_ps: AtomicU64::new(0),
        }
    }
}

/// Hands each thread a stable small integer the first time it records.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

// Const-initialised with a sentinel so the hot-path access compiles to
// a direct TLS load (lazily-initialised `thread_local!` pays an
// initialisation check and possibly a dynamic TLS call on every
// access); the slot is claimed from the global counter on first use.
thread_local! {
    static THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Raw per-thread slot (unmasked). Shared with the flight recorder so a
/// thread lands on the same stripe index in every sharded structure.
#[inline]
pub(crate) fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            s = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
            slot.set(s);
        }
        s
    })
}

#[inline]
fn thread_shard() -> usize {
    thread_slot() & (HIST_SHARDS - 1)
}

/// A log2 latency histogram safe for concurrent recording.
///
/// `record_ps` is lock-free and allocation-free: a thread-local shard
/// index selects a stripe, then three relaxed atomic RMWs (bucket, sum,
/// max). [`merge`](Self::merge) folds all stripes into a plain
/// [`Log2Histogram`]; because every stripe is only ever added to, a merge
/// taken while recorders are live is a valid (if slightly stale) snapshot,
/// and two merges bracket the samples recorded between them — which is
/// exactly what [`Log2Histogram::delta_since`] needs.
pub struct ShardedHistogram {
    shards: Box<[HistShard; HIST_SHARDS]>,
}

impl ShardedHistogram {
    /// Creates an empty histogram.
    pub fn new() -> ShardedHistogram {
        let shards: Vec<HistShard> = (0..HIST_SHARDS).map(|_| HistShard::new()).collect();
        let shards: Box<[HistShard; HIST_SHARDS]> = match shards.into_boxed_slice().try_into() {
            Ok(a) => a,
            Err(_) => unreachable!("built with HIST_SHARDS elements"),
        };
        ShardedHistogram { shards }
    }

    /// Records one sample, in picoseconds. Lock-free, allocation-free.
    #[inline]
    pub fn record_ps(&self, ps: u64) {
        let shard = &self.shards[thread_shard()];
        shard.counts[Log2Histogram::bucket_of(ps)].fetch_add(1, Ordering::Relaxed);
        shard.sum_ps.fetch_add(ps, Ordering::Relaxed);
        shard.max_ps.fetch_max(ps, Ordering::Relaxed);
    }

    /// Records `n` samples of the same picosecond value in one atomic
    /// pass. Batch paths that measure one interval covering `n` equal
    /// contributions (e.g. every cache-served block of a page visit
    /// shares the visit's latency) would otherwise pay three RMWs per
    /// sample to record `n` identical values; this keeps the exact
    /// same merged histogram — count, sum, buckets, max — for the
    /// price of one.
    #[inline]
    pub fn record_ps_n(&self, ps: u64, n: u64) {
        if n == 0 {
            return;
        }
        let shard = &self.shards[thread_shard()];
        shard.counts[Log2Histogram::bucket_of(ps)].fetch_add(n, Ordering::Relaxed);
        shard.sum_ps.fetch_add(ps.saturating_mul(n), Ordering::Relaxed);
        shard.max_ps.fetch_max(ps, Ordering::Relaxed);
    }

    /// Records one simulated-time sample.
    #[inline]
    pub fn record(&self, latency: TimeDelta) {
        self.record_ps(latency.picos());
    }

    /// Records one host-clock sample. Nanoseconds are widened to the
    /// histogram's picosecond domain (saturating far beyond any real
    /// host latency).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record_ps(ns.saturating_mul(1000));
    }

    /// Records `n` host-clock samples of the same duration in one
    /// atomic pass (see [`record_ps_n`](Self::record_ps_n)).
    #[inline]
    pub fn record_duration_n(&self, d: Duration, n: u64) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record_ps_n(ns.saturating_mul(1000), n);
    }

    /// Folds every shard into a single-threaded histogram.
    pub fn merge(&self) -> Log2Histogram {
        let mut counts = [0u64; LOG2_BUCKETS];
        let mut sum_ps: u128 = 0;
        let mut max_ps: u64 = 0;
        for shard in self.shards.iter() {
            for (i, c) in shard.counts.iter().enumerate() {
                counts[i] += c.load(Ordering::Relaxed);
            }
            sum_ps += shard.sum_ps.load(Ordering::Relaxed) as u128;
            max_ps = max_ps.max(shard.max_ps.load(Ordering::Relaxed));
        }
        Log2Histogram::from_parts(counts, sum_ps, max_ps)
    }
}

impl Default for ShardedHistogram {
    fn default() -> ShardedHistogram {
        ShardedHistogram::new()
    }
}

impl fmt::Debug for ShardedHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedHistogram")
            .field("merged", &self.merge())
            .finish()
    }
}

/// Typed registration failure. Validation happens when a metric is named,
/// not when it is rendered, so a hostile or typo'd name fails loudly at
/// the registration site instead of corrupting the exposition text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// Metric name does not match `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    InvalidMetricName(String),
    /// Label name does not match `[a-zA-Z_][a-zA-Z0-9_]*`, or starts with
    /// the reserved `__` prefix.
    InvalidLabelName(String),
    /// A metric with this exact name and label set is already registered.
    DuplicateMetric(String),
    /// The name is already registered as a different metric kind.
    KindMismatch(String),
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::InvalidMetricName(n) => {
                write!(f, "invalid metric name {n:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*")
            }
            MetricsError::InvalidLabelName(n) => {
                write!(
                    f,
                    "invalid label name {n:?}: must match [a-zA-Z_][a-zA-Z0-9_]* and not start with __"
                )
            }
            MetricsError::DuplicateMetric(n) => {
                write!(f, "metric {n} already registered with this label set")
            }
            MetricsError::KindMismatch(n) => {
                write!(f, "metric {n} already registered as a different kind")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// `true` iff `name` is a valid Prometheus metric name.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` iff `name` is a valid, non-reserved Prometheus label name.
pub fn valid_label_name(name: &str) -> bool {
    if name.starts_with("__") {
        return false;
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// What kind of metric a [`Sample`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Log2 latency histogram (picoseconds).
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` keyword.
    pub fn type_keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registered metric's value at snapshot time. Public fields so
/// callers can also assemble samples directly from their own snapshot
/// structs and feed them to [`crate::prom::render`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric family name (validated at registration).
    pub name: String,
    /// One-line help text (escaped by the exposition writer).
    pub help: String,
    /// Metric kind, controls the exposition shape.
    pub kind: MetricKind,
    /// `(label, value)` pairs; label names validated, values escaped.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: SampleValue,
}

/// The value inside a [`Sample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Merged histogram.
    Histogram(Log2Histogram),
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<ShardedHistogram>),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

#[derive(Default)]
struct RegistryInner {
    entries: Vec<Entry>,
    /// Family name -> kind, to reject kind-mismatched re-registration.
    families: BTreeMap<String, MetricKind>,
}

/// A named collection of metric handles.
///
/// Registration is cold-path (one mutex, allocations); the returned
/// `Arc` handles are the hot path and never touch the registry again.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Result<Handle, MetricsError> {
        if !valid_metric_name(name) {
            return Err(MetricsError::InvalidMetricName(name.to_string()));
        }
        for (label, _) in labels {
            if !valid_label_name(label) {
                return Err(MetricsError::InvalidLabelName(label.to_string()));
            }
        }
        let handle = make();
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(&kind) = inner.families.get(name) {
            if kind != handle.kind() {
                return Err(MetricsError::KindMismatch(name.to_string()));
            }
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if inner
            .entries
            .iter()
            .any(|e| e.name == name && e.labels == labels)
        {
            return Err(MetricsError::DuplicateMetric(name.to_string()));
        }
        inner.families.insert(name.to_string(), handle.kind());
        let out = match &handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        };
        inner.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            handle,
        });
        Ok(out)
    }

    /// Registers a counter and returns its handle.
    pub fn counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Counter>, MetricsError> {
        match self.register(name, help, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        })? {
            Handle::Counter(c) => Ok(c),
            _ => unreachable!("registered a counter"),
        }
    }

    /// Registers a gauge and returns its handle.
    pub fn gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Gauge>, MetricsError> {
        match self.register(name, help, labels, || Handle::Gauge(Arc::new(Gauge::new())))? {
            Handle::Gauge(g) => Ok(g),
            _ => unreachable!("registered a gauge"),
        }
    }

    /// Registers a sharded histogram and returns its handle.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<ShardedHistogram>, MetricsError> {
        match self.register(name, help, labels, || {
            Handle::Histogram(Arc::new(ShardedHistogram::new()))
        })? {
            Handle::Histogram(h) => Ok(h),
            _ => unreachable!("registered a histogram"),
        }
    }

    /// Reads every registered metric. Histograms are merged; the snapshot
    /// is consistent per-metric (each value is atomic) but not across
    /// metrics, which is the usual scrape contract.
    pub fn snapshot(&self) -> Vec<Sample> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .entries
            .iter()
            .map(|e| Sample {
                name: e.name.clone(),
                help: e.help.clone(),
                kind: e.handle.kind(),
                labels: e.labels.clone(),
                value: match &e.handle {
                    Handle::Counter(c) => SampleValue::Counter(c.get()),
                    Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                    Handle::Histogram(h) => SampleValue::Histogram(h.merge()),
                },
            })
            .collect()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        f.debug_struct("Registry")
            .field("metrics", &inner.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.inc();
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn sharded_histogram_merges_to_plain() {
        let h = ShardedHistogram::new();
        for ps in [0u64, 1, 2, 3, 4, 1000, 1024] {
            h.record_ps(ps);
        }
        let merged = h.merge();
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.max_ps(), 1024);
        let mean = (0 + 1 + 2 + 3 + 4 + 1000 + 1024) as f64 / 7.0;
        assert!((merged.mean_ps() - mean).abs() < 1e-9);
        // Same bucketing as the single-threaded histogram.
        assert_eq!(merged.bucket_count(2), 2); // 2, 3
        assert_eq!(merged.bucket_count(11), 1); // 1024
    }

    #[test]
    fn merged_counts_are_deterministic_across_interleavings() {
        // Model-check style: whatever the interleaving, the merged totals
        // equal the arithmetic truth. Several rounds with different thread
        // counts vary the schedule.
        for &threads in &[2usize, 4, 8, 13] {
            let h = Arc::new(ShardedHistogram::new());
            let per_thread = 1000u64;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let h = Arc::clone(&h);
                    thread::spawn(move || {
                        for i in 0..per_thread {
                            h.record_ps(t as u64 * per_thread + i);
                        }
                    })
                })
                .collect();
            for jh in handles {
                jh.join().unwrap();
            }
            let merged = h.merge();
            assert_eq!(merged.count(), threads as u64 * per_thread);
            let n = threads as u128 * per_thread as u128;
            let expected_sum = n * (n - 1) / 2;
            assert!(
                (merged.mean_ps() - expected_sum as f64 / n as f64).abs() < 1e-6,
                "sum must be exact regardless of interleaving"
            );
            assert_eq!(merged.max_ps(), threads as u64 * per_thread - 1);
        }
    }

    #[test]
    fn merge_while_recording_is_a_valid_prefix() {
        // A merge taken concurrently with recorders must see some prefix
        // of the samples: count <= final, and a later merge sees them all.
        let h = Arc::new(ShardedHistogram::new());
        let writer = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..50_000u64 {
                    h.record_ps(i % 97);
                }
            })
        };
        let mid = h.merge();
        assert!(mid.count() <= 50_000);
        writer.join().unwrap();
        assert_eq!(h.merge().count(), 50_000);
    }

    #[test]
    fn registry_validates_names() {
        let reg = Registry::new();
        assert!(reg.counter("clme_ok_total", "h", &[]).is_ok());
        assert!(matches!(
            reg.counter("0bad", "h", &[]),
            Err(MetricsError::InvalidMetricName(_))
        ));
        assert!(matches!(
            reg.counter("bad name", "h", &[]),
            Err(MetricsError::InvalidMetricName(_))
        ));
        assert!(matches!(
            reg.counter("bad\nname", "h", &[]),
            Err(MetricsError::InvalidMetricName(_))
        ));
        assert!(matches!(
            reg.gauge("ok", "h", &[("0bad", "v")]),
            Err(MetricsError::InvalidLabelName(_))
        ));
        assert!(matches!(
            reg.gauge("ok", "h", &[("__reserved", "v")]),
            Err(MetricsError::InvalidLabelName(_))
        ));
        assert!(matches!(
            reg.gauge("ok", "h", &[("label\"quote", "v")]),
            Err(MetricsError::InvalidLabelName(_))
        ));
        // Hostile label *values* are fine at registration: the exposition
        // writer escapes them.
        assert!(reg
            .counter("ok_total", "h", &[("shard", "a\"b\\c\nd")])
            .is_ok());
    }

    #[test]
    fn registry_rejects_duplicates_and_kind_mismatch() {
        let reg = Registry::new();
        reg.counter("dup_total", "h", &[("shard", "0")]).unwrap();
        // Same family, different labels: fine.
        assert!(reg.counter("dup_total", "h", &[("shard", "1")]).is_ok());
        assert!(matches!(
            reg.counter("dup_total", "h", &[("shard", "0")]),
            Err(MetricsError::DuplicateMetric(_))
        ));
        assert!(matches!(
            reg.gauge("dup_total", "h", &[("shard", "2")]),
            Err(MetricsError::KindMismatch(_))
        ));
    }

    #[test]
    fn snapshot_reads_live_values() {
        let reg = Registry::new();
        let c = reg.counter("snap_total", "h", &[]).unwrap();
        let g = reg.gauge("snap_level", "h", &[]).unwrap();
        let h = reg.histogram("snap_ps", "h", &[]).unwrap();
        c.add(3);
        g.set(9);
        h.record_ps(64);
        let samples = reg.snapshot();
        assert_eq!(samples.len(), 3);
        match &samples[0].value {
            SampleValue::Counter(v) => assert_eq!(*v, 3),
            other => panic!("expected counter, got {other:?}"),
        }
        match &samples[1].value {
            SampleValue::Gauge(v) => assert_eq!(*v, 9),
            other => panic!("expected gauge, got {other:?}"),
        }
        match &samples[2].value {
            SampleValue::Histogram(hist) => assert_eq!(hist.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn record_duration_widens_to_picos() {
        let h = ShardedHistogram::new();
        h.record_duration(Duration::from_nanos(5));
        assert_eq!(h.merge().max_ps(), 5000);
    }
}
