//! Bounded-cardinality tenant tracking.
//!
//! A shared encryption layer serving thousands of tenants cannot afford a
//! metric series per tenant: Prometheus cardinality and per-series memory
//! both explode. This module bounds the blast radius at a fixed `K`:
//!
//! * [`TenantScope`] hands out at most `K` exact label slots. Tenants
//!   beyond the cap fold into the shared [`OTHER_TENANT`] rollup series,
//!   so downstream histograms/counters stay `O(K)` no matter how many
//!   tenants exist. Slots can be *primed* up front (when the caller knows
//!   the expected heavy hitters, e.g. a workload composer that built the
//!   popularity distribution) or claimed first-observed.
//! * [`SpaceSaving`] is the classic Metwally et al. heavy-hitter sketch:
//!   `cap` monitored entries, evict-the-minimum on overflow with the
//!   evictee's count as the newcomer's error floor. It ranks tenants
//!   *empirically*, so a scope primed with the wrong tenants can detect
//!   an unadmitted heavy hitter hiding inside `__other__`.
//! * [`TenantSketch`] shards `SpaceSaving` per writer stream and merges
//!   deterministically (sum by id, order by count desc / id asc), so the
//!   merged top-K is a pure function of each stream's content — thread
//!   interleaving across streams cannot change it.
//!
//! Nothing here reads a clock or allocates on the observe path beyond the
//! sketch's fixed-capacity tables.

use std::collections::HashMap;
use std::sync::Mutex;

/// Label value for the folded long-tail series.
pub const OTHER_TENANT: &str = "__other__";

/// Number of independent writer shards in [`TenantSketch`].
pub const TENANT_SKETCH_SHARDS: usize = 8;

/// One monitored entry of a [`SpaceSaving`] sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeavyHitter {
    /// Tenant id.
    pub id: u64,
    /// Estimated observation count (true count is in
    /// `[count - error, count]`).
    pub count: u64,
    /// Maximum overestimation inherited from the evicted minimum.
    pub error: u64,
}

/// Space-saving heavy-hitter sketch over `u64` tenant ids.
///
/// Tracks at most `cap` tenants. Observing a monitored tenant increments
/// its count exactly; observing an unmonitored one evicts the current
/// minimum and inherits its count as the error floor. Guarantees: any
/// tenant with true frequency `> N / cap` is monitored, and every
/// reported `count` overestimates the true count by at most `error`.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    cap: usize,
    entries: Vec<HeavyHitter>,
    /// id -> index into `entries`.
    index: HashMap<u64, usize>,
}

impl SpaceSaving {
    /// Creates a sketch monitoring at most `cap` tenants (min 1).
    pub fn new(cap: usize) -> SpaceSaving {
        let cap = cap.max(1);
        SpaceSaving {
            cap,
            entries: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap * 2),
        }
    }

    /// Monitored-slot capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Records `weight` observations of tenant `id`.
    pub fn observe_n(&mut self, id: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        if let Some(&i) = self.index.get(&id) {
            self.entries[i].count += weight;
            return;
        }
        if self.entries.len() < self.cap {
            self.index.insert(id, self.entries.len());
            self.entries.push(HeavyHitter {
                id,
                count: weight,
                error: 0,
            });
            return;
        }
        // Evict the minimum-count entry; ties break on the larger id so
        // that, all else equal, earlier-admitted small ids survive.
        let mut victim = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            let v = &self.entries[victim];
            if e.count < v.count || (e.count == v.count && e.id > v.id) {
                victim = i;
            }
        }
        let floor = self.entries[victim].count;
        self.index.remove(&self.entries[victim].id);
        self.index.insert(id, victim);
        self.entries[victim] = HeavyHitter {
            id,
            count: floor + weight,
            error: floor,
        };
    }

    /// Records one observation of tenant `id`.
    pub fn observe(&mut self, id: u64) {
        self.observe_n(id, 1);
    }

    /// Monitored entries ordered by count descending, id ascending.
    pub fn top(&self) -> Vec<HeavyHitter> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        out
    }

    /// Resets the sketch to empty.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

/// A sharded [`SpaceSaving`] sketch with a deterministic merge.
///
/// Each writer stream observes into its own shard (`shard = stream %
/// TENANT_SKETCH_SHARDS`), so concurrent streams never interleave inside
/// one sketch. [`TenantSketch::merged_top`] sums per-id counts across
/// shards and orders by count desc / id asc — a pure function of each
/// shard's content, hence identical across thread schedules as long as
/// the stream -> shard assignment is fixed.
pub struct TenantSketch {
    shards: [Mutex<SpaceSaving>; TENANT_SKETCH_SHARDS],
}

impl TenantSketch {
    /// Creates a sketch with `cap` monitored slots per shard.
    pub fn new(cap: usize) -> TenantSketch {
        TenantSketch {
            shards: std::array::from_fn(|_| Mutex::new(SpaceSaving::new(cap))),
        }
    }

    /// Records `weight` observations of `id` on behalf of writer
    /// `stream`. Streams map to shards by modulo; a stream observes the
    /// same shard for its whole lifetime.
    pub fn observe_n(&self, stream: usize, id: u64, weight: u64) {
        let shard = stream % TENANT_SKETCH_SHARDS;
        self.shards[shard]
            .lock()
            .expect("tenant sketch shard poisoned")
            .observe_n(id, weight);
    }

    /// Merged heavy hitters: per-id counts and errors summed across
    /// shards, top `limit` by count desc / id asc.
    pub fn merged_top(&self, limit: usize) -> Vec<HeavyHitter> {
        let mut merged: HashMap<u64, (u64, u64)> = HashMap::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("tenant sketch shard poisoned");
            for e in &guard.entries {
                let slot = merged.entry(e.id).or_insert((0, 0));
                slot.0 += e.count;
                slot.1 += e.error;
            }
        }
        let mut out: Vec<HeavyHitter> = merged
            .into_iter()
            .map(|(id, (count, error))| HeavyHitter { id, count, error })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        out.truncate(limit);
        out
    }

    /// Empties every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .expect("tenant sketch shard poisoned")
                .clear();
        }
    }
}

/// Bounded registry of exact tenant label slots.
///
/// At most `cap` tenants get their own slot (and hence their own metric
/// series); every other tenant resolves to [`TenantScope::OTHER_SLOT`]
/// and shares the `__other__` rollup. Admission is first-come: prime the
/// scope with known heavy hitters before traffic starts, or let the
/// first `cap` observed tenants claim the slots.
pub struct TenantScope {
    cap: usize,
    inner: Mutex<ScopeInner>,
}

struct ScopeInner {
    /// Slot index -> tenant id, in admission order.
    slots: Vec<u64>,
    /// Tenant id -> slot index.
    by_id: HashMap<u64, usize>,
    /// Tenants that resolved to `__other__` at least once.
    folded: u64,
}

impl TenantScope {
    /// Slot index returned for tenants beyond the cap. Callers size their
    /// per-slot metric arrays as `cap() + 1` and use the *last* index for
    /// the rollup; `resolve` returns `cap()` itself for folded tenants.
    pub const OTHER_SLOT: usize = usize::MAX;

    /// Creates a scope with `cap` exact slots (min 1).
    pub fn new(cap: usize) -> TenantScope {
        let cap = cap.max(1);
        TenantScope {
            cap,
            inner: Mutex::new(ScopeInner {
                slots: Vec::with_capacity(cap),
                by_id: HashMap::with_capacity(cap * 2),
                folded: 0,
            }),
        }
    }

    /// Number of exact slots.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Pre-admits `id` to an exact slot, returning its index, or `None`
    /// if the scope is full and `id` is not already admitted. Call
    /// before traffic with the expected heaviest tenants.
    pub fn prime(&self, id: u64) -> Option<usize> {
        let mut inner = self.inner.lock().expect("tenant scope poisoned");
        if let Some(&slot) = inner.by_id.get(&id) {
            return Some(slot);
        }
        if inner.slots.len() >= self.cap {
            return None;
        }
        let slot = inner.slots.len();
        inner.slots.push(id);
        inner.by_id.insert(id, slot);
        Some(slot)
    }

    /// Resolves `id` to its slot, admitting it if a slot is free.
    /// Returns [`TenantScope::OTHER_SLOT`] for folded tenants.
    pub fn resolve(&self, id: u64) -> usize {
        let mut inner = self.inner.lock().expect("tenant scope poisoned");
        if let Some(&slot) = inner.by_id.get(&id) {
            return slot;
        }
        if inner.slots.len() < self.cap {
            let slot = inner.slots.len();
            inner.slots.push(id);
            inner.by_id.insert(id, slot);
            return slot;
        }
        inner.folded += 1;
        TenantScope::OTHER_SLOT
    }

    /// Slot for `id` if it is admitted, without admitting it.
    pub fn lookup(&self, id: u64) -> Option<usize> {
        self.inner
            .lock()
            .expect("tenant scope poisoned")
            .by_id
            .get(&id)
            .copied()
    }

    /// Admitted tenant ids in slot order.
    pub fn admitted(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("tenant scope poisoned")
            .slots
            .clone()
    }

    /// Number of resolve calls that fell through to `__other__`.
    pub fn folded(&self) -> u64 {
        self.inner.lock().expect("tenant scope poisoned").folded
    }
}

/// Sanitised tenant label: `tenant-<id>` for admitted tenants,
/// [`OTHER_TENANT`] for the rollup. Generating the label (rather than
/// accepting caller strings) keeps ids printable; free-form names still
/// pass through the Prometheus writer's escaping when callers attach
/// their own.
pub fn tenant_label(slot_tenant: Option<u64>) -> String {
    match slot_tenant {
        Some(id) => format!("tenant-{id}"),
        None => OTHER_TENANT.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_exact_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for id in 0..5u64 {
            for _ in 0..=id {
                s.observe(id);
            }
        }
        let top = s.top();
        assert_eq!(top.len(), 5);
        assert_eq!(top[0], HeavyHitter { id: 4, count: 5, error: 0 });
        assert_eq!(top[4], HeavyHitter { id: 0, count: 1, error: 0 });
        // Under capacity every count is exact.
        assert!(top.iter().all(|e| e.error == 0));
    }

    #[test]
    fn space_saving_keeps_heavy_hitters_over_capacity() {
        let mut s = SpaceSaving::new(4);
        // Two heavy tenants drowned in a sea of singletons.
        for round in 0..100u64 {
            s.observe(1000);
            s.observe(1001);
            s.observe(2000 + round); // 100 distinct light tenants
        }
        let top = s.top();
        assert_eq!(top[0].id, 1000);
        assert_eq!(top[1].id, 1001);
        // Heavy counts are exact-or-overestimates, never lost.
        assert!(top[0].count >= 100);
        assert!(top[1].count >= 100);
        // True count lies within [count - error, count].
        assert!(top[0].count - top[0].error <= 100);
    }

    #[test]
    fn space_saving_weighted_observe() {
        let mut s = SpaceSaving::new(2);
        s.observe_n(7, 50);
        s.observe_n(8, 10);
        s.observe_n(9, 30); // evicts 8 (min), inherits error floor 10
        let top = s.top();
        assert_eq!(top[0], HeavyHitter { id: 7, count: 50, error: 0 });
        assert_eq!(top[1], HeavyHitter { id: 9, count: 40, error: 10 });
    }

    #[test]
    fn sketch_merge_is_interleaving_independent() {
        use std::sync::Arc;
        // Fixed per-stream workloads; only the thread schedule varies.
        let workload = |stream: usize| -> Vec<(u64, u64)> {
            (0..200u64)
                .map(|i| ((i * 7 + stream as u64 * 13) % 32, 1 + i % 3))
                .collect()
        };
        let run = |spawn_order: &[usize]| -> Vec<HeavyHitter> {
            let sketch = Arc::new(TenantSketch::new(16));
            let mut handles = Vec::new();
            for &stream in spawn_order {
                let sk = Arc::clone(&sketch);
                let ops = workload(stream);
                handles.push(std::thread::spawn(move || {
                    for (id, w) in ops {
                        sk.observe_n(stream, id, w);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            sketch.merged_top(16)
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[3, 2, 1, 0]);
        let c = run(&[2, 0, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn scope_folds_beyond_cap() {
        let scope = TenantScope::new(3);
        assert_eq!(scope.resolve(10), 0);
        assert_eq!(scope.resolve(20), 1);
        assert_eq!(scope.resolve(30), 2);
        assert_eq!(scope.resolve(40), TenantScope::OTHER_SLOT);
        assert_eq!(scope.resolve(10), 0); // stable for admitted ids
        assert_eq!(scope.folded(), 1);
        assert_eq!(scope.admitted(), vec![10, 20, 30]);
        assert_eq!(scope.lookup(40), None);
    }

    #[test]
    fn scope_priming_reserves_slots() {
        let scope = TenantScope::new(2);
        assert_eq!(scope.prime(5), Some(0));
        assert_eq!(scope.prime(5), Some(0)); // idempotent
        assert_eq!(scope.prime(6), Some(1));
        assert_eq!(scope.prime(7), None); // full
        // Primed tenants resolve to their reserved slots; others fold.
        assert_eq!(scope.resolve(6), 1);
        assert_eq!(scope.resolve(7), TenantScope::OTHER_SLOT);
    }

    #[test]
    fn tenant_labels() {
        assert_eq!(tenant_label(Some(42)), "tenant-42");
        assert_eq!(tenant_label(None), OTHER_TENANT);
    }
}
