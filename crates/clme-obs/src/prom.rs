//! Prometheus text-format exposition for [`registry`](crate::registry)
//! samples.
//!
//! The writer consumes [`Sample`]s — from [`Registry::snapshot`]
//! (`Registry` in [`crate::registry`]) or assembled directly from a typed
//! snapshot struct — and renders the classic `text/plain; version=0.0.4`
//! format: `# HELP` / `# TYPE` headers once per family, then one line per
//! sample. Histograms render as cumulative `_bucket{le="..."}` lines over
//! the log2 bucket bounds (only buckets with samples, plus `+Inf`), with
//! `_sum` and `_count`.
//!
//! Trust boundary: metric and label *names* were validated at
//! registration ([`crate::registry::valid_metric_name`],
//! [`crate::registry::valid_label_name`]) and are rendered verbatim;
//! anything that failed validation is skipped here as defence in depth. Label *values* and help text are arbitrary UTF-8 and
//! are escaped per the exposition grammar (`\\`, `\"`, `\n`), so a
//! hostile backend path or workload label cannot break a scrape.

use std::fmt::Write as _;

use crate::hist::{Log2Histogram, LOG2_BUCKETS};
use crate::registry::{valid_label_name, valid_metric_name, Sample, SampleValue};

/// Escapes a label value: backslash, double-quote, and newline, per the
/// Prometheus text exposition grammar. Other bytes (including tabs and
/// non-ASCII UTF-8) pass through verbatim, as real scrapers expect.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes help text: backslash and newline (quotes are legal in help).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Log2Histogram) {
    let mut cumulative = 0u64;
    for i in 0..LOG2_BUCKETS {
        let n = h.bucket_count(i);
        if n == 0 {
            continue;
        }
        cumulative += n;
        // The log2 bucket covers [lo, hi); its Prometheus `le` bound is
        // the last contained value, hi - 1 (the top bucket saturates).
        let le = Log2Histogram::bucket_hi_ps(i).saturating_sub(1).max(1);
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block(labels, Some(("le", &le.to_string())))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block(labels, Some(("le", "+Inf"))),
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), {
        // Exact integer sum of picoseconds; u128 prints without float loss.
        let mean = h.mean_ps();
        format_value(mean * h.count() as f64)
    });
    let _ = writeln!(out, "{name}_count{} {}", label_block(labels, None), h.count());
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders samples as Prometheus exposition text.
///
/// Samples sharing a family name are grouped; `# HELP`/`# TYPE` are
/// emitted once per family, from the first sample of that family. Samples
/// whose metric or label names fail validation are skipped (the registry
/// already rejects them; this guards hand-assembled samples).
pub fn render(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut seen_families: Vec<&str> = Vec::new();
    for sample in samples {
        if !valid_metric_name(&sample.name)
            || sample.labels.iter().any(|(k, _)| !valid_label_name(k))
        {
            continue;
        }
        if !seen_families.contains(&sample.name.as_str()) {
            seen_families.push(&sample.name);
            let _ = writeln!(out, "# HELP {} {}", sample.name, escape_help(&sample.help));
            let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.kind.type_keyword());
        }
        match (&sample.value, sample.kind) {
            (SampleValue::Counter(v), _) => {
                let _ = writeln!(out, "{}{} {v}", sample.name, label_block(&sample.labels, None));
            }
            (SampleValue::Gauge(v), _) => {
                let _ = writeln!(out, "{}{} {v}", sample.name, label_block(&sample.labels, None));
            }
            (SampleValue::Histogram(h), _) => {
                render_histogram(&mut out, &sample.name, &sample.labels, h);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricKind, Registry};
    use clme_types::TimeDelta;

    fn sample(name: &str, labels: &[(&str, &str)], value: SampleValue) -> Sample {
        Sample {
            name: name.into(),
            help: "help".into(),
            kind: match value {
                SampleValue::Counter(_) => MetricKind::Counter,
                SampleValue::Gauge(_) => MetricKind::Gauge,
                SampleValue::Histogram(_) => MetricKind::Histogram,
            },
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }

    #[test]
    fn renders_counters_and_gauges_with_headers() {
        let reg = Registry::new();
        let c = reg
            .counter("clme_ops_total", "ops so far", &[("shard", "3")])
            .unwrap();
        c.add(42);
        reg.gauge("clme_level", "current level", &[]).unwrap().set(7);
        let text = render(&reg.snapshot());
        assert!(text.contains("# HELP clme_ops_total ops so far\n"));
        assert!(text.contains("# TYPE clme_ops_total counter\n"));
        assert!(text.contains("clme_ops_total{shard=\"3\"} 42\n"));
        assert!(text.contains("# TYPE clme_level gauge\n"));
        assert!(text.contains("clme_level 7\n"));
    }

    #[test]
    fn family_header_emitted_once_across_label_sets() {
        let reg = Registry::new();
        reg.counter("clme_fam_total", "h", &[("shard", "0")])
            .unwrap()
            .add(1);
        reg.counter("clme_fam_total", "h", &[("shard", "1")])
            .unwrap()
            .add(2);
        let text = render(&reg.snapshot());
        assert_eq!(text.matches("# TYPE clme_fam_total counter").count(), 1);
        assert!(text.contains("clme_fam_total{shard=\"0\"} 1\n"));
        assert!(text.contains("clme_fam_total{shard=\"1\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_sum_count() {
        let reg = Registry::new();
        let h = reg.histogram("clme_lat_ps", "latency", &[]).unwrap();
        for ps in [3u64, 3, 5, 1000] {
            h.record(TimeDelta::from_picos(ps));
        }
        let text = render(&reg.snapshot());
        // 3,3 in [2,4) -> le=3 cum 2; 5 in [4,8) -> le=7 cum 3;
        // 1000 in [512,1024) -> le=1023 cum 4.
        assert!(text.contains("clme_lat_ps_bucket{le=\"3\"} 2\n"), "{text}");
        assert!(text.contains("clme_lat_ps_bucket{le=\"7\"} 3\n"), "{text}");
        assert!(text.contains("clme_lat_ps_bucket{le=\"1023\"} 4\n"), "{text}");
        assert!(text.contains("clme_lat_ps_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("clme_lat_ps_sum 1011\n"), "{text}");
        assert!(text.contains("clme_lat_ps_count 4\n"), "{text}");
    }

    #[test]
    fn hostile_label_values_are_escaped_not_leaked() {
        // The same adversarial corpus the Chrome-trace escaping tests use:
        // quotes, backslashes, newlines, control characters.
        let hostile = "cell \"x\"\\y\n\u{2}z";
        let s = sample(
            "clme_hostile_total",
            &[("path", hostile)],
            SampleValue::Counter(1),
        );
        let text = render(&[s]);
        assert!(
            text.contains(r#"path="cell \"x\"\\y\n"#),
            "escapes missing: {text:?}"
        );
        // No raw newline may survive inside a sample line: every line must
        // end cleanly and parse as `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.ends_with(" 1"), "malformed sample line {line:?}");
            assert!(line.starts_with("clme_hostile_total{path=\""));
        }
        // Exactly HELP + TYPE + one sample line.
        assert_eq!(text.lines().count(), 3, "{text:?}");
    }

    #[test]
    fn hostile_help_text_is_escaped() {
        let mut s = sample("clme_help_total", &[], SampleValue::Counter(0));
        s.help = "line one\nline \\two \"quoted\"".into();
        let text = render(&[s]);
        assert!(
            text.contains("# HELP clme_help_total line one\\nline \\\\two \"quoted\"\n"),
            "{text:?}"
        );
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn invalid_names_in_hand_assembled_samples_are_skipped() {
        // The registry rejects these at registration; render() must not
        // emit them when a caller assembles samples by hand.
        let bad_name = sample("bad name", &[], SampleValue::Counter(1));
        let bad_label = sample("ok_total", &[("bad-label", "v")], SampleValue::Counter(1));
        let injected = sample("ok_total\nevil 1", &[], SampleValue::Counter(1));
        let good = sample("ok_total", &[], SampleValue::Counter(9));
        let text = render(&[bad_name, bad_label, injected, good]);
        assert!(!text.contains("bad name"));
        assert!(!text.contains("bad-label"));
        assert!(!text.contains("evil"));
        assert!(text.contains("ok_total 9\n"));
    }

    #[test]
    fn empty_histogram_renders_inf_only() {
        let reg = Registry::new();
        reg.histogram("clme_empty_ps", "h", &[]).unwrap();
        let text = render(&reg.snapshot());
        assert!(text.contains("clme_empty_ps_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("clme_empty_ps_sum 0\n"));
        assert!(text.contains("clme_empty_ps_count 0\n"));
    }
}
