//! Monotonic event counters and the component/event vocabulary.
//!
//! The enums here are the shared vocabulary between instrumentation sites
//! (which emit) and sinks (which aggregate). They are `#[repr(usize)]` so a
//! counter bank is a flat array indexed without hashing.

use core::fmt;

/// The pipeline component an event was observed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Component {
    /// The interval core model (ROB / dispatch).
    Core = 0,
    /// The L1/L2/LLC cache hierarchy.
    Cache = 1,
    /// An encryption engine (any of the four kinds).
    Engine = 2,
    /// The DRAM bank/bus timing model.
    Dram = 3,
}

impl Component {
    /// All components, in index order.
    pub const ALL: [Component; 4] = [
        Component::Core,
        Component::Cache,
        Component::Engine,
        Component::Dram,
    ];

    /// Stable lower-case name (used in trace categories and reports).
    pub const fn name(self) -> &'static str {
        match self {
            Component::Core => "core",
            Component::Cache => "cache",
            Component::Engine => "engine",
            Component::Dram => "dram",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened. One counter slot per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum EventKind {
    /// A demand read missed the LLC and entered the engine read path.
    ReadMiss = 0,
    /// A prefetch fill passed through the engine.
    PrefetchFill = 1,
    /// A dirty eviction entered the engine writeback path.
    Writeback = 2,
    /// A counter fetch had to go to DRAM (counter-cache miss).
    CounterFetchStart = 3,
    /// A counter fetch was served by the counter cache.
    CounterCacheHit = 4,
    /// The counter became known only after the data arrived.
    CounterLate = 5,
    /// The OTP came from the sequential-pad memo (no AES on the path).
    PadMemoized = 6,
    /// The OTP required a fresh AES pipeline pass.
    PadAes = 7,
    /// A MAC/ECC integrity check on the read path.
    MacVerify = 8,
    /// A writeback encrypted in counter mode.
    WritebackCounterMode = 9,
    /// A writeback encrypted in counterless (direct) mode.
    WritebackCounterless = 10,
    /// DRAM demand access hit the open row.
    RowHit = 11,
    /// DRAM demand access to a closed bank (activate needed).
    RowClosed = 12,
    /// DRAM demand access conflicted with a different open row.
    RowConflict = 13,
    /// A burst occupied the channel bus (demand or background).
    BusTransfer = 14,
    /// Demand access hit in a core's L1.
    L1Hit = 15,
    /// Demand access hit in a core's L2.
    L2Hit = 16,
    /// Demand access hit in the shared LLC.
    LlcHit = 17,
    /// Demand access missed the whole hierarchy.
    LlcMiss = 18,
    /// Dispatch stalled because the ROB was full.
    RobStall = 19,
}

/// Number of [`EventKind`] variants.
pub const EVENT_KINDS: usize = 20;

impl EventKind {
    /// All event kinds, in index order.
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::ReadMiss,
        EventKind::PrefetchFill,
        EventKind::Writeback,
        EventKind::CounterFetchStart,
        EventKind::CounterCacheHit,
        EventKind::CounterLate,
        EventKind::PadMemoized,
        EventKind::PadAes,
        EventKind::MacVerify,
        EventKind::WritebackCounterMode,
        EventKind::WritebackCounterless,
        EventKind::RowHit,
        EventKind::RowClosed,
        EventKind::RowConflict,
        EventKind::BusTransfer,
        EventKind::L1Hit,
        EventKind::L2Hit,
        EventKind::LlcHit,
        EventKind::LlcMiss,
        EventKind::RobStall,
    ];

    /// Stable kebab-case name (used in trace events and reports).
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::ReadMiss => "read-miss",
            EventKind::PrefetchFill => "prefetch-fill",
            EventKind::Writeback => "writeback",
            EventKind::CounterFetchStart => "counter-fetch-start",
            EventKind::CounterCacheHit => "counter-cache-hit",
            EventKind::CounterLate => "counter-late",
            EventKind::PadMemoized => "pad-memoized",
            EventKind::PadAes => "pad-aes",
            EventKind::MacVerify => "mac-verify",
            EventKind::WritebackCounterMode => "writeback-counter-mode",
            EventKind::WritebackCounterless => "writeback-counterless",
            EventKind::RowHit => "row-hit",
            EventKind::RowClosed => "row-closed",
            EventKind::RowConflict => "row-conflict",
            EventKind::BusTransfer => "bus-transfer",
            EventKind::L1Hit => "l1-hit",
            EventKind::L2Hit => "l2-hit",
            EventKind::LlcHit => "llc-hit",
            EventKind::LlcMiss => "llc-miss",
            EventKind::RobStall => "rob-stall",
        }
    }

    /// The component this kind of event belongs to.
    pub const fn component(self) -> Component {
        match self {
            EventKind::ReadMiss
            | EventKind::PrefetchFill
            | EventKind::Writeback
            | EventKind::CounterFetchStart
            | EventKind::CounterCacheHit
            | EventKind::CounterLate
            | EventKind::PadMemoized
            | EventKind::PadAes
            | EventKind::MacVerify
            | EventKind::WritebackCounterMode
            | EventKind::WritebackCounterless => Component::Engine,
            EventKind::RowHit
            | EventKind::RowClosed
            | EventKind::RowConflict
            | EventKind::BusTransfer => Component::Dram,
            EventKind::L1Hit | EventKind::L2Hit | EventKind::LlcHit | EventKind::LlcMiss => {
                Component::Cache
            }
            EventKind::RobStall => Component::Core,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A flat bank of monotonic counters, one per [`EventKind`].
///
/// # Examples
///
/// ```
/// use clme_obs::{EventCounters, EventKind};
///
/// let mut c = EventCounters::new();
/// c.bump(EventKind::RowHit);
/// assert_eq!(c.get(EventKind::RowHit), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventCounters {
    counts: [u64; EVENT_KINDS],
}

impl EventCounters {
    /// Creates a zeroed counter bank.
    pub const fn new() -> EventCounters {
        EventCounters {
            counts: [0; EVENT_KINDS],
        }
    }

    /// Increments the counter for `kind`.
    #[inline]
    pub fn bump(&mut self, kind: EventKind) {
        self.counts[kind as usize] += 1;
    }

    /// Current value of the counter for `kind`.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Iterates `(kind, count)` pairs with nonzero counts, in index order.
    pub fn nonzero(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL
            .iter()
            .map(|&k| (k, self.get(k)))
            .filter(|&(_, n)| n > 0)
    }

    /// The counts accumulated since `baseline` was cloned off this bank
    /// (per-kind subtraction). Used by the epoch sampler to turn the
    /// cumulative bank into per-epoch deltas.
    ///
    /// # Panics
    ///
    /// Panics (via arithmetic underflow) if `baseline` is not an earlier
    /// state of `self`.
    pub fn delta_since(&self, baseline: &EventCounters) -> EventCounters {
        let mut counts = [0u64; EVENT_KINDS];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i] - baseline.counts[i];
        }
        EventCounters { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_and_indices_agree() {
        for (i, &k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k as usize, i, "{k} discriminant drifted from ALL order");
        }
        for (i, &c) in Component::ALL.iter().enumerate() {
            assert_eq!(c as usize, i);
        }
    }

    #[test]
    fn bump_and_nonzero() {
        let mut c = EventCounters::new();
        c.bump(EventKind::LlcMiss);
        c.bump(EventKind::LlcMiss);
        c.bump(EventKind::RobStall);
        assert_eq!(c.get(EventKind::LlcMiss), 2);
        assert_eq!(c.get(EventKind::L1Hit), 0);
        let listed: Vec<_> = c.nonzero().collect();
        assert_eq!(
            listed,
            vec![(EventKind::LlcMiss, 2), (EventKind::RobStall, 1)]
        );
    }

    #[test]
    fn every_kind_has_a_component_and_name() {
        for &k in EventKind::ALL.iter() {
            assert!(!k.name().is_empty());
            let _ = k.component(); // must be total
        }
    }
}
