//! The epoch sampler: counters and histograms *over simulated time*.
//!
//! The paper's key effects are temporal — counter-cache warmup, the
//! row-buffer contention that makes counters arrive later than data
//! (Fig. 8), and the per-epoch mode switch itself — but end-of-run
//! aggregates flatten all of it. [`SeriesRecorder`] is a [`TraceSink`]
//! that, in addition to accumulating the same per-stage histograms and
//! event counters as [`Recorder`](crate::Recorder), snapshots the
//! *delta* of every counter and histogram each `epoch_cycles` simulated
//! core cycles into a compact [`EpochSeries`]: per-epoch IPC,
//! counter-cache hit rate, row-conflict rate, and per-stage latency
//! percentiles.
//!
//! Epoch boundaries are driven by the [`TraceSink::tick`] hook (called
//! by the machine per executed op and by the engines/DRAM on their
//! `_obs` entry points) and instruction counts by [`TraceSink::retire`];
//! both are pure integer bookkeeping on the single-threaded simulation
//! sequence, so a cell's series is byte-identical no matter how many
//! matrix worker threads ran around it.
//!
//! # Examples
//!
//! ```
//! use clme_obs::{SeriesRecorder, Stage, TraceSink};
//! use clme_types::{Time, TimeDelta};
//!
//! // 10 cycles of 100 ps per epoch.
//! let mut rec = SeriesRecorder::new(10, TimeDelta::from_picos(100));
//! rec.latency(Stage::Dram, TimeDelta::from_ns(20));
//! rec.retire(7);
//! rec.tick(Time::from_picos(1_500)); // crosses one full epoch
//! let series = rec.into_series();
//! assert_eq!(series.samples[0].instructions, 7);
//! assert_eq!(series.samples[0].stages[Stage::Dram as usize].count, 1);
//! ```

use crate::counters::{EventCounters, EventKind};
use crate::hist::Log2Histogram;
use crate::sink::{Stage, TraceSink, STAGES};
use crate::span::{BlameTally, BlameTracker, SpanKind};
use clme_types::json::JsonValue;
use clme_types::{Time, TimeDelta};
use std::any::Any;

/// Default epoch length in core cycles (~2.56 µs at 3.2 GHz): fine
/// enough to resolve counter-cache warmup in a tiny matrix cell, coarse
/// enough that a full evaluation window stays a few hundred samples.
pub const DEFAULT_EPOCH_CYCLES: u64 = 8_192;

/// Per-stage summary of one epoch's latency samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageSample {
    /// Samples recorded in this epoch.
    pub count: u64,
    /// Exact mean latency of the epoch's samples, in picoseconds.
    pub mean_ps: f64,
    /// Approximate median, in picoseconds.
    pub p50_ps: u64,
    /// Approximate 95th percentile, in picoseconds.
    pub p95_ps: u64,
}

impl StageSample {
    fn from_hist(hist: &Log2Histogram) -> StageSample {
        StageSample {
            count: hist.count(),
            mean_ps: hist.mean_ps(),
            p50_ps: hist.percentile_ps(0.50),
            p95_ps: hist.percentile_ps(0.95),
        }
    }
}

/// One epoch of the time-series: every counter delta plus per-stage
/// latency summaries.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSample {
    /// Epoch number since the measurement window started (0-based).
    pub index: u64,
    /// Simulated end of the epoch.
    pub end: Time,
    /// Core cycles this epoch covers (`epoch_cycles`, except a shorter
    /// final partial epoch).
    pub cycles: u64,
    /// Instructions retired (all cores) in this epoch.
    pub instructions: u64,
    /// Event-counter deltas for this epoch.
    pub counters: EventCounters,
    /// Per-stage latency summaries for this epoch (indexed by `Stage`).
    pub stages: [StageSample; STAGES],
}

impl EpochSample {
    /// Aggregate IPC over this epoch (all cores' instructions divided by
    /// the epoch's core cycles).
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Counter-cache hit rate over this epoch's counter fetches
    /// (hits / (hits + DRAM fetches)); 0 when no counters were fetched.
    pub fn counter_cache_hit_rate(&self) -> f64 {
        let hits = self.counters.get(EventKind::CounterCacheHit);
        let misses = self.counters.get(EventKind::CounterFetchStart);
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Fraction of this epoch's demand DRAM accesses that conflicted
    /// with a different open row; 0 when DRAM was idle.
    pub fn row_conflict_rate(&self) -> f64 {
        let conflicts = self.counters.get(EventKind::RowConflict);
        let total = conflicts
            + self.counters.get(EventKind::RowHit)
            + self.counters.get(EventKind::RowClosed);
        if total == 0 {
            0.0
        } else {
            conflicts as f64 / total as f64
        }
    }
}

/// The complete epoch time-series of one measured window.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSeries {
    /// Nominal epoch length in core cycles.
    pub epoch_cycles: u64,
    /// The core period the cycle counts are denominated in.
    pub core_period: TimeDelta,
    /// The epochs, in simulated-time order.
    pub samples: Vec<EpochSample>,
}

impl EpochSeries {
    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the window produced no epochs.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest per-epoch IPC (0 for an empty series).
    pub fn ipc_min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(EpochSample::ipc)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest per-epoch IPC (0 for an empty series).
    pub fn ipc_max(&self) -> f64 {
        self.samples.iter().map(EpochSample::ipc).fold(0.0, f64::max)
    }

    /// IPC of the final epoch (0 for an empty series) — the steady-state
    /// signal, vs. [`ipc_min`](Self::ipc_min) which usually catches the
    /// cold-cache first epochs.
    pub fn ipc_last(&self) -> f64 {
        self.samples.last().map(EpochSample::ipc).unwrap_or(0.0)
    }

    /// Counter-cache hit rate of the final epoch (warmup endpoint).
    pub fn counter_cache_hit_rate_last(&self) -> f64 {
        self.samples
            .last()
            .map(EpochSample::counter_cache_hit_rate)
            .unwrap_or(0.0)
    }

    /// Mean of the per-epoch row-conflict rates (0 for an empty series).
    pub fn row_conflict_rate_mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(EpochSample::row_conflict_rate).sum::<f64>()
            / self.samples.len() as f64
    }

    /// The byte-stable JSON encoding of the series (ends with a
    /// newline): one object per epoch with IPC, derived rates, nonzero
    /// counters, and per-stage summaries. `label` names the cell.
    pub fn to_json(&self, label: &str) -> String {
        let epochs = self
            .samples
            .iter()
            .map(|sample| {
                let counters = sample
                    .counters
                    .nonzero()
                    .map(|(kind, count)| (kind.name().to_string(), JsonValue::Num(count as f64)))
                    .collect();
                let stages = Stage::ALL
                    .iter()
                    .map(|&stage| {
                        let s = &sample.stages[stage as usize];
                        (
                            stage.name().to_string(),
                            JsonValue::Obj(vec![
                                ("count".into(), JsonValue::Num(s.count as f64)),
                                ("mean_ps".into(), JsonValue::Num(s.mean_ps)),
                                ("p50_ps".into(), JsonValue::Num(s.p50_ps as f64)),
                                ("p95_ps".into(), JsonValue::Num(s.p95_ps as f64)),
                            ]),
                        )
                    })
                    .collect();
                JsonValue::Obj(vec![
                    ("index".into(), JsonValue::Num(sample.index as f64)),
                    ("end_ps".into(), JsonValue::Num(sample.end.picos() as f64)),
                    ("cycles".into(), JsonValue::Num(sample.cycles as f64)),
                    (
                        "instructions".into(),
                        JsonValue::Num(sample.instructions as f64),
                    ),
                    ("ipc".into(), JsonValue::Num(sample.ipc())),
                    (
                        "counter_cache_hit_rate".into(),
                        JsonValue::Num(sample.counter_cache_hit_rate()),
                    ),
                    (
                        "row_conflict_rate".into(),
                        JsonValue::Num(sample.row_conflict_rate()),
                    ),
                    ("counters".into(), JsonValue::Obj(counters)),
                    ("stages".into(), JsonValue::Obj(stages)),
                ])
            })
            .collect();
        let doc = JsonValue::Obj(vec![
            ("label".into(), JsonValue::Str(label.to_string())),
            (
                "epoch_cycles".into(),
                JsonValue::Num(self.epoch_cycles as f64),
            ),
            (
                "core_period_ps".into(),
                JsonValue::Num(self.core_period.picos() as f64),
            ),
            ("epochs".into(), JsonValue::Arr(epochs)),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        text
    }
}

/// A [`TraceSink`] that accumulates the same cumulative per-stage
/// histograms and event counters as [`Recorder`](crate::Recorder) (no
/// event ring) and additionally flushes an [`EpochSample`] of the deltas
/// every `epoch_cycles` simulated core cycles.
#[derive(Clone, Debug)]
pub struct SeriesRecorder {
    epoch_cycles: u64,
    core_period: TimeDelta,
    epoch_len: TimeDelta,
    /// Simulated start of the current sampling window.
    base: Time,
    /// Latest simulated time observed via [`TraceSink::tick`].
    cursor: Time,
    instructions: u64,
    counters: EventCounters,
    stages: [Log2Histogram; STAGES],
    /// State at the last flushed epoch boundary (for delta extraction).
    flushed_instructions: u64,
    flushed_counters: EventCounters,
    flushed_stages: [Log2Histogram; STAGES],
    samples: Vec<EpochSample>,
    /// O(1)-per-request critical-path blame over the whole window (the
    /// `blame.*` snapshot metrics; not broken out per epoch).
    blame: BlameTracker,
}

impl SeriesRecorder {
    /// Creates a sampler flushing every `epoch_cycles` cycles of
    /// `core_period` each.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_cycles` is 0 or `core_period` is zero.
    pub fn new(epoch_cycles: u64, core_period: TimeDelta) -> SeriesRecorder {
        assert!(epoch_cycles > 0, "epoch must cover at least one cycle");
        assert!(
            core_period > TimeDelta::ZERO,
            "core period must be positive"
        );
        SeriesRecorder {
            epoch_cycles,
            core_period,
            epoch_len: core_period * epoch_cycles,
            base: Time::ZERO,
            cursor: Time::ZERO,
            instructions: 0,
            counters: EventCounters::new(),
            stages: Default::default(),
            flushed_instructions: 0,
            flushed_counters: EventCounters::new(),
            flushed_stages: Default::default(),
            samples: Vec::new(),
            blame: BlameTracker::new(),
        }
    }

    /// The critical-path blame tally over the measured window.
    pub fn blame_tally(&self) -> &BlameTally {
        self.blame.tally()
    }

    /// The cumulative event counters (like [`Recorder::counters`](crate::Recorder::counters)).
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// The cumulative latency histogram for `stage`.
    pub fn stage(&self, stage: Stage) -> &Log2Histogram {
        &self.stages[stage as usize]
    }

    /// The epochs flushed so far (excludes the in-flight partial epoch).
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// The end of the next unflushed epoch.
    fn next_boundary(&self) -> Time {
        self.base + self.epoch_len * (self.samples.len() as u64 + 1)
    }

    /// Flushes one epoch ending at `end` covering `cycles` cycles.
    fn flush(&mut self, end: Time, cycles: u64) {
        let mut stages = [StageSample::default(); STAGES];
        for (i, stage) in stages.iter_mut().enumerate() {
            let delta = self.stages[i].delta_since(&self.flushed_stages[i]);
            *stage = StageSample::from_hist(&delta);
        }
        self.samples.push(EpochSample {
            index: self.samples.len() as u64,
            end,
            cycles,
            instructions: self.instructions - self.flushed_instructions,
            counters: self.counters.delta_since(&self.flushed_counters),
            stages,
        });
        self.flushed_instructions = self.instructions;
        self.flushed_counters = self.counters.clone();
        self.flushed_stages = self.stages.clone();
    }

    /// Extracts the series, flushing any trailing partial epoch that
    /// covers at least one whole cycle.
    pub fn into_series(mut self) -> EpochSeries {
        let last_boundary = self.base + self.epoch_len * (self.samples.len() as u64);
        let tail_cycles = self.cursor.saturating_since(last_boundary) / self.core_period;
        let tail_activity = self.instructions > self.flushed_instructions
            || self.counters != self.flushed_counters
            || self.stages != self.flushed_stages;
        if tail_cycles > 0 && tail_activity {
            let end = self.cursor;
            self.flush(end, tail_cycles);
        }
        EpochSeries {
            epoch_cycles: self.epoch_cycles,
            core_period: self.core_period,
            samples: self.samples,
        }
    }
}

impl TraceSink for SeriesRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(
        &mut self,
        _at: Time,
        _component: crate::counters::Component,
        event: EventKind,
        _addr: u64,
        _latency: TimeDelta,
    ) {
        self.counters.bump(event);
    }

    fn count(&mut self, event: EventKind) {
        self.counters.bump(event);
    }

    fn latency(&mut self, stage: Stage, latency: TimeDelta) {
        self.stages[stage as usize].record(latency);
    }

    fn tick(&mut self, now: Time) {
        if now <= self.cursor {
            return;
        }
        self.cursor = now;
        while self.cursor >= self.next_boundary() {
            let end = self.next_boundary();
            self.flush(end, self.epoch_cycles);
        }
    }

    fn retire(&mut self, instructions: u64) {
        self.instructions += instructions;
    }

    fn span_request_begin(&mut self, _at: Time, _addr: u64) {
        self.blame.begin();
    }

    fn span_child(&mut self, kind: SpanKind, _level: u8, _begin: Time, end: Time) {
        self.blame.child(kind, end);
    }

    fn span_request_end(&mut self, data_arrival: Time, ready: Time) {
        self.blame.end(data_arrival, ready);
    }

    fn window_reset(&mut self) {
        // Re-anchor epoch 0 at the measurement window's start: the last
        // observed time is (up to one op) the window boundary.
        self.base = self.cursor;
        self.instructions = 0;
        self.flushed_instructions = 0;
        self.counters = EventCounters::new();
        self.flushed_counters = EventCounters::new();
        for stage in &mut self.stages {
            stage.clear();
        }
        for stage in &mut self.flushed_stages {
            stage.clear();
        }
        self.samples.clear();
        self.blame.reset();
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Component;

    fn ps(v: u64) -> Time {
        Time::from_picos(v)
    }

    /// 10 cycles of 100 ps: epoch boundaries at 1000, 2000, 3000, ...
    fn recorder() -> SeriesRecorder {
        SeriesRecorder::new(10, TimeDelta::from_picos(100))
    }

    #[test]
    fn epochs_flush_on_boundary_crossings() {
        let mut rec = recorder();
        rec.retire(5);
        rec.latency(Stage::Dram, TimeDelta::from_picos(400));
        rec.tick(ps(999));
        assert!(rec.samples().is_empty(), "no boundary crossed yet");
        rec.tick(ps(1000));
        assert_eq!(rec.samples().len(), 1);
        let first = &rec.samples()[0];
        assert_eq!(first.instructions, 5);
        assert_eq!(first.cycles, 10);
        assert_eq!(first.end, ps(1000));
        assert!((first.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(first.stages[Stage::Dram as usize].count, 1);
        // A jump across several boundaries flushes the quiet epochs too.
        rec.retire(3);
        rec.tick(ps(3_500));
        assert_eq!(rec.samples().len(), 3);
        assert_eq!(rec.samples()[1].instructions, 3);
        assert_eq!(rec.samples()[2].instructions, 0);
        assert_eq!(rec.samples()[2].counters, EventCounters::new());
    }

    #[test]
    fn deltas_do_not_double_count() {
        let mut rec = recorder();
        rec.count(EventKind::RowHit);
        rec.count(EventKind::RowHit);
        rec.tick(ps(1000));
        rec.count(EventKind::RowHit);
        rec.tick(ps(2000));
        assert_eq!(rec.samples()[0].counters.get(EventKind::RowHit), 2);
        assert_eq!(rec.samples()[1].counters.get(EventKind::RowHit), 1);
        // Cumulative view still totals 3.
        assert_eq!(rec.counters().get(EventKind::RowHit), 3);
    }

    #[test]
    fn non_monotonic_ticks_are_tolerated() {
        let mut rec = recorder();
        rec.tick(ps(1_500));
        rec.tick(ps(700)); // a component-local timestamp trailing the max
        rec.tick(ps(1_600));
        assert_eq!(rec.samples().len(), 1);
        assert_eq!(rec.samples()[0].end, ps(1000));
    }

    #[test]
    fn window_reset_reanchors_epoch_zero() {
        let mut rec = recorder();
        rec.retire(100);
        rec.tick(ps(2_350)); // two epochs + partial
        rec.window_reset();
        assert!(rec.samples().is_empty());
        rec.retire(4);
        // Base is now 2350: the next boundary is 3350.
        rec.tick(ps(3_349));
        assert!(rec.samples().is_empty());
        rec.tick(ps(3_350));
        assert_eq!(rec.samples().len(), 1);
        assert_eq!(rec.samples()[0].instructions, 4);
    }

    #[test]
    fn into_series_flushes_the_partial_tail() {
        let mut rec = recorder();
        rec.retire(6);
        rec.tick(ps(1000));
        rec.retire(2);
        rec.latency(Stage::Engine, TimeDelta::from_picos(50));
        rec.tick(ps(1_530)); // 5 whole cycles past the boundary
        let series = rec.into_series();
        assert_eq!(series.len(), 2);
        let tail = &series.samples[1];
        assert_eq!(tail.cycles, 5);
        assert_eq!(tail.instructions, 2);
        assert_eq!(tail.end, ps(1_530));
        assert!((tail.ipc() - 0.4).abs() < 1e-12);
        // A quiet tail (no activity after the boundary) is dropped.
        let mut quiet = recorder();
        quiet.retire(1);
        quiet.tick(ps(1000));
        quiet.tick(ps(1_999));
        assert_eq!(quiet.into_series().len(), 1);
    }

    #[test]
    fn derived_rates() {
        let mut rec = recorder();
        rec.count(EventKind::CounterCacheHit);
        rec.count(EventKind::CounterCacheHit);
        rec.count(EventKind::CounterCacheHit);
        rec.count(EventKind::CounterFetchStart);
        rec.count(EventKind::RowHit);
        rec.count(EventKind::RowConflict);
        rec.tick(ps(1000));
        let sample = &rec.samples()[0];
        assert!((sample.counter_cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((sample.row_conflict_rate() - 0.5).abs() < 1e-12);
        // Empty epochs report 0 rates, not NaN.
        rec.tick(ps(2000));
        let quiet = &rec.samples()[1];
        assert_eq!(quiet.counter_cache_hit_rate(), 0.0);
        assert_eq!(quiet.row_conflict_rate(), 0.0);
    }

    #[test]
    fn series_json_is_stable_and_parses() {
        let mut rec = recorder();
        rec.retire(10);
        rec.count(EventKind::ReadMiss);
        rec.event(
            ps(10),
            Component::Dram,
            EventKind::RowHit,
            7,
            TimeDelta::from_picos(100),
        );
        rec.latency(Stage::Cache, TimeDelta::from_picos(300));
        rec.tick(ps(2_000));
        let series = rec.into_series();
        let a = series.to_json("table1/counter-light/bfs");
        let b = series.to_json("table1/counter-light/bfs");
        assert_eq!(a, b);
        let doc = clme_types::json::parse(&a).expect("series JSON must parse");
        assert_eq!(
            doc.get("label").and_then(JsonValue::as_str),
            Some("table1/counter-light/bfs")
        );
        let epochs = match doc.get("epochs") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("epochs missing: {other:?}"),
        };
        assert_eq!(epochs.len(), 2);
        assert_eq!(
            epochs[0].get("instructions").and_then(JsonValue::as_f64),
            Some(10.0)
        );
    }

    #[test]
    fn hostile_labels_survive_series_json() {
        // The label is caller-supplied (CLI bench/config names), so the
        // emitted document must escape quotes, backslashes, and control
        // characters rather than leaking them into the JSON.
        let mut rec = recorder();
        rec.retire(3);
        rec.tick(ps(2_000));
        let series = rec.into_series();
        let label = "cfg\"x\"/eng\\y/bench\n\u{2}z";
        let text = series.to_json(label);
        assert!(
            text.bytes().all(|b| b >= 0x20 || b == b'\n'),
            "raw control bytes leaked: {text:?}"
        );
        let doc = clme_types::json::parse(&text).expect("hostile-label series must parse");
        assert_eq!(doc.get("label").and_then(JsonValue::as_str), Some(label));
    }

    #[test]
    fn summary_accessors_cover_empty_and_filled() {
        let empty = EpochSeries {
            epoch_cycles: 10,
            core_period: TimeDelta::from_picos(100),
            samples: Vec::new(),
        };
        assert_eq!(empty.ipc_min(), 0.0);
        assert_eq!(empty.ipc_max(), 0.0);
        assert_eq!(empty.ipc_last(), 0.0);
        assert_eq!(empty.counter_cache_hit_rate_last(), 0.0);
        assert_eq!(empty.row_conflict_rate_mean(), 0.0);
        assert!(empty.is_empty());

        let mut rec = recorder();
        rec.retire(2);
        rec.tick(ps(1000));
        rec.retire(8);
        rec.tick(ps(2000));
        let series = rec.into_series();
        assert!((series.ipc_min() - 0.2).abs() < 1e-12);
        assert!((series.ipc_max() - 0.8).abs() < 1e-12);
        assert!((series.ipc_last() - 0.8).abs() < 1e-12);
        assert_eq!(series.len(), 2);
    }
}
