//! Security analyses from the paper (Sections II-B, IV-B, IV-D, IV-F).
//!
//! * [`algebraic`] — the algebraic-attack accounting of Section IV-F:
//!   unknown/equation counts for the boolean system (Eqs. 1–2) and its
//!   multivariate-quadratic (MQ) transformation (Eqs. 3–4), plus the
//!   `m ≥ n(n−1)/2` polynomial-solvability test the paper applies.
//! * [`linearity`] — empirical (non)linearity and diffusion measurements
//!   of the two OTP combiners (Fig. 15): RMCC's carry-less multiply is
//!   perfectly linear; Counter-light's barrel-shift + S-box is not.
//! * [`replay`] — executable versions of the paper's replay arguments:
//!   the Fig. 10 pad-reuse leak when a counter is replayed before a
//!   writeback, the integrity tree detecting counter replay, and the
//!   (accepted) whole-block replay that matches counterless security.
//! * [`sidechannel`] — the ciphertext side channel of Section IV-D that
//!   motivates per-VM keys for counterless blocks.
//!
//! # Examples
//!
//! ```
//! use clme_security::algebraic::AttackSystem;
//!
//! let simplest = AttackSystem::new(2, 2);
//! assert_eq!(simplest.boolean_unknowns(), 512);
//! assert!(!simplest.mq_polynomially_solvable());
//! ```

pub mod algebraic;
pub mod linearity;
pub mod replay;
pub mod sidechannel;

pub use algebraic::AttackSystem;
