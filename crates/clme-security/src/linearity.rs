//! Empirical (non)linearity measurements of the OTP combiners (Fig. 15).
//!
//! RMCC combines the address-only and counter-only AES results with a
//! carry-less multiplication — a perfectly *linear* map, which is what
//! enables the equation-solving attack the paper analyses. Counter-light
//! replaces it with barrel shifting + S-box substitution. These helpers
//! quantify both properties so the `security` bench target can print
//! them.

use clme_crypto::combine::{avalanche_score, combine_linear, combine_nonlinear};
use clme_types::rng::Xoshiro256;

/// Fraction of random triples (a, b, c) violating
/// `f(a ⊕ b, c) = f(a, c) ⊕ f(b, c)` — 0.0 for a linear combiner,
/// ≈ 1.0 for a nonlinear one.
pub fn linearity_violation_rate<F>(combiner: F, trials: u32, seed: u64) -> f64
where
    F: Fn([u8; 16], [u8; 16]) -> [u8; 16],
{
    let mut rng = Xoshiro256::seed_from(seed);
    let mut violations = 0u32;
    for _ in 0..trials {
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        let mut c = [0u8; 16];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        rng.fill_bytes(&mut c);
        let ab: [u8; 16] = core::array::from_fn(|i| a[i] ^ b[i]);
        let lhs = combiner(ab, c);
        let fa = combiner(a, c);
        let fb = combiner(b, c);
        let rhs: [u8; 16] = core::array::from_fn(|i| fa[i] ^ fb[i]);
        if lhs != rhs {
            violations += 1;
        }
    }
    violations as f64 / trials as f64
}

/// A summary row for the `security` bench: name, linearity-violation
/// rate, and single-bit diffusion (average flipped output bits).
#[derive(Clone, Debug, PartialEq)]
pub struct CombinerReport {
    /// Which combiner.
    pub name: &'static str,
    /// Fraction of linearity tests violated (0 = linear).
    pub violation_rate: f64,
    /// Average output bits flipped per flipped input bit.
    pub diffusion_bits: f64,
}

/// Measures both combiners with `trials` random tests each.
pub fn report(trials: u32) -> [CombinerReport; 2] {
    [
        CombinerReport {
            name: "rmcc-clmul (linear)",
            violation_rate: linearity_violation_rate(combine_linear, trials, 101),
            diffusion_bits: avalanche_score(combine_linear, trials, 102, true),
        },
        CombinerReport {
            name: "counter-light barrel+sbox",
            violation_rate: linearity_violation_rate(combine_nonlinear, trials, 103),
            diffusion_bits: avalanche_score(combine_nonlinear, trials, 104, true),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmul_is_exactly_linear() {
        assert_eq!(linearity_violation_rate(combine_linear, 200, 7), 0.0);
    }

    #[test]
    fn barrel_sbox_is_essentially_never_linear() {
        let rate = linearity_violation_rate(combine_nonlinear, 200, 8);
        assert!(rate > 0.99, "violation rate {rate}");
    }

    #[test]
    fn report_contains_both_combiners() {
        let rows = report(100);
        assert_eq!(rows[0].violation_rate, 0.0);
        assert!(rows[1].violation_rate > 0.9);
        assert!(rows[0].diffusion_bits > 0.0);
        assert!(rows[1].diffusion_bits > 0.0);
    }
}
