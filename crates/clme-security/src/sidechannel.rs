//! The ciphertext side channel of Section IV-D.
//!
//! Counterless (XTS) encryption is deterministic: the same plaintext at
//! the same address always produces the same ciphertext. An attacker who
//! knows a plaintext/ciphertext pair from their own VM can recognise when
//! a *later* VM writes the same value to the same (reused) block —
//! unless VMs use different keys. Counter mode is immune with a single
//! global key because the counter freshens every write.

use clme_crypto::keys::KeyMaterial;

/// Outcome of the three experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SideChannelReport {
    /// Same key, counterless: attacker recognises the victim's value.
    pub counterless_shared_key_leaks: bool,
    /// Per-VM keys, counterless: ciphertexts differ — channel closed.
    pub counterless_per_vm_keys_leak: bool,
    /// Single global key, counter mode: fresh counters — channel closed.
    pub counter_mode_global_key_leaks: bool,
}

/// Runs the experiments with real keys and ciphers.
pub fn run() -> SideChannelReport {
    let keys = KeyMaterial::from_master([0x99; 32]);
    let block_addr = 0x1234;
    let secret: [u8; 64] = core::array::from_fn(|i| b"attacker-guessable-value"[i % 24]);

    // Counterless, one key for everyone (the broken configuration).
    let attacker_view = keys.xts().encrypt_block64(block_addr, &secret);
    let victim_write = keys.xts().encrypt_block64(block_addr, &secret);
    let counterless_shared_key_leaks = attacker_view == victim_write;

    // Counterless with per-VM keys (the paper's requirement).
    let vm_a = keys.xts_for_vm(1).encrypt_block64(block_addr, &secret);
    let vm_b = keys.xts_for_vm(2).encrypt_block64(block_addr, &secret);
    let counterless_per_vm_keys_leak = vm_a == vm_b;

    // Counter mode with a single global key: different write counters.
    let write_1 = keys.otp().encrypt_block64(block_addr, 10, &secret);
    let write_2 = keys.otp().encrypt_block64(block_addr, 11, &secret);
    let counter_mode_global_key_leaks = write_1 == write_2;

    SideChannelReport {
        counterless_shared_key_leaks,
        counterless_per_vm_keys_leak,
        counter_mode_global_key_leaks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_key_architecture_argument() {
        let report = run();
        assert!(report.counterless_shared_key_leaks, "XTS determinism leaks");
        assert!(!report.counterless_per_vm_keys_leak, "per-VM keys close it");
        assert!(
            !report.counter_mode_global_key_leaks,
            "counters close it with one key"
        );
    }
}
