//! Algebraic-attack accounting (Section IV-F, Eqs. 1–4).
//!
//! An attacker observing the OTPs of `α` memory blocks that share `c`
//! counter values can write boolean equations whose unknowns are the bits
//! of the α address-only AES results and the c counter-only AES results.
//! The paper counts unknowns and equations in two settings:
//!
//! * **Boolean / CNF** (fed to a SAT solver): `n = 128(α + c)` unknowns,
//!   `m = 128·α·c` equations. The simplest theoretically solvable case is
//!   α = c = 2 (512 = 512), but MiniSat made no progress in two months.
//! * **Multivariate quadratic (MQ)**: transforming through the
//!   barrel-shift + S-box circuit yields `m = 760·α·c + 160(α + c)`
//!   equations over `n ≥ 128(α + c)` variables. MQ systems are solvable
//!   in polynomial time only when `m ≥ n(n−1)/2`; the paper shows the
//!   inequality never holds, so the attack stays NP-hard.

/// The equation system induced by `alpha` blocks sharing `c` counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AttackSystem {
    /// Number of memory blocks whose OTPs the attacker observed.
    pub alpha: u64,
    /// Number of distinct counter values shared among them.
    pub c: u64,
}

impl AttackSystem {
    /// Creates the system for `alpha` blocks × `c` counters.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero (no observations, no system).
    pub fn new(alpha: u64, c: u64) -> AttackSystem {
        assert!(alpha > 0 && c > 0, "need at least one block and counter");
        AttackSystem { alpha, c }
    }

    /// Eq. (1): boolean unknowns `n = 128(α + c)`.
    pub fn boolean_unknowns(&self) -> u64 {
        128 * (self.alpha + self.c)
    }

    /// Eq. (2): boolean equations `m = 128·α·c` (one per OTP bit).
    pub fn boolean_equations(&self) -> u64 {
        128 * self.alpha * self.c
    }

    /// Whether the boolean system is *theoretically* determined
    /// (equations ≥ unknowns) — necessary but nowhere near sufficient for
    /// a practical solve.
    pub fn boolean_theoretically_solvable(&self) -> bool {
        self.boolean_equations() >= self.boolean_unknowns()
    }

    /// Eq. (3): MQ equations `m = 760·α·c + 160(α + c)` after
    /// transforming the combiner circuit to quadratic form.
    pub fn mq_equations(&self) -> u64 {
        760 * self.alpha * self.c + 160 * (self.alpha + self.c)
    }

    /// Eq. (4): a lower bound on MQ variables, `n ≥ 128(α + c)` (the
    /// transformation only *adds* intermediate variables).
    pub fn mq_variables_lower_bound(&self) -> u64 {
        128 * (self.alpha + self.c)
    }

    /// The Thomae–Wolf criterion: an MQ system is polynomial-time
    /// solvable when `m ≥ n(n−1)/2`. Checked against the *lower bound*
    /// on `n`, which is the attacker-optimistic case — if it fails here
    /// it fails for the true (larger) `n` too.
    pub fn mq_polynomially_solvable(&self) -> bool {
        let n = self.mq_variables_lower_bound() as u128;
        let m = self.mq_equations() as u128;
        m >= n * (n - 1) / 2
    }
}

/// Sweeps (α, c) pairs and confirms the paper's conclusion that no
/// configuration makes the MQ attack polynomial; returns the first
/// counterexample if one exists (it does not, for any inputs — see the
/// proof sketch in [`AttackSystem::mq_polynomially_solvable`]'s tests).
pub fn find_polynomial_counterexample(max_alpha: u64, max_c: u64) -> Option<AttackSystem> {
    for alpha in 1..=max_alpha {
        for c in 1..=max_c {
            let system = AttackSystem::new(alpha, c);
            if system.mq_polynomially_solvable() {
                return Some(system);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplest_solvable_case_matches_paper() {
        // α = c = 2: m = 512 boolean equations, n = 512 unknowns.
        let s = AttackSystem::new(2, 2);
        assert_eq!(s.boolean_unknowns(), 512);
        assert_eq!(s.boolean_equations(), 512);
        assert!(s.boolean_theoretically_solvable());
    }

    #[test]
    fn single_observation_is_underdetermined() {
        let s = AttackSystem::new(1, 1);
        assert_eq!(s.boolean_unknowns(), 256);
        assert_eq!(s.boolean_equations(), 128);
        assert!(!s.boolean_theoretically_solvable());
    }

    #[test]
    fn mq_counts_match_equations_3_and_4() {
        let s = AttackSystem::new(2, 2);
        assert_eq!(s.mq_equations(), 760 * 4 + 160 * 4);
        assert_eq!(s.mq_variables_lower_bound(), 512);
    }

    #[test]
    fn mq_never_polynomial_small_sweep() {
        assert_eq!(find_polynomial_counterexample(64, 64), None);
    }

    #[test]
    fn mq_never_polynomial_even_at_scale() {
        // Asymptotically m grows as 760αc while n(n−1)/2 grows as
        // 128²(α+c)²/2 ≥ 2·128²·αc ≫ 760αc: the gap only widens.
        for &(alpha, c) in &[(1u64, 1_000_000u64), (1_000_000, 1), (10_000, 10_000)] {
            let s = AttackSystem::new(alpha, c);
            assert!(!s.mq_polynomially_solvable(), "α={alpha}, c={c}");
        }
    }

    #[test]
    fn more_observations_stay_theoretically_solvable_but_hard() {
        for alpha in 2..20 {
            for c in 2..20 {
                let s = AttackSystem::new(alpha, c);
                assert!(s.boolean_theoretically_solvable());
                assert!(!s.mq_polynomially_solvable());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_alpha_panics() {
        let _ = AttackSystem::new(0, 1);
    }
}
