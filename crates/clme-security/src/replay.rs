//! Executable replay-attack demonstrations.
//!
//! Three results from the paper, as running code:
//!
//! 1. [`pad_reuse_leaks_new_plaintext`] — Fig. 10: if an attacker can
//!    replay a block's *counter* before a writeback, the new data is
//!    encrypted under an old pad, and `P₂ = C₁ ⊕ P₁ ⊕ C₂` reveals it.
//!    This is why Counter-light keeps the integrity tree on the
//!    *writeback* path.
//! 2. [`counter_replay_detected_by_tree`] — the tree with its on-chip
//!    root detects the replayed counter, blocking attack 1.
//! 3. [`whole_block_replay_accepted`] — replaying the complete
//!    {data, MAC, parity} tuple passes verification: Counter-light
//!    deliberately matches *counterless* security, which also accepts
//!    this (Fig. 1, Section IV-F).

use clme_core::functional::MemoryImage;
use clme_counters::tree::IntegrityTree;
use clme_crypto::otp::{xor64, OtpCipher};
use clme_types::BlockAddr;

/// Fig. 10: computes the attacker's reconstruction of the *new* plaintext
/// from one known old plaintext and two observed ciphertexts sharing a
/// replayed counter. Returns `(reconstructed, actual_new_plaintext)` —
/// equal iff the attack works.
pub fn pad_reuse_leaks_new_plaintext() -> ([u8; 64], [u8; 64]) {
    let otp = OtpCipher::new_128([0xD1; 16]);
    let block_addr = 0x40;
    let counter = 7;
    // ① Known old plaintext, ② its observed ciphertext.
    let old_plaintext = [0x11u8; 64];
    let old_ciphertext = otp.encrypt_block64(block_addr, counter, &old_plaintext);
    // ③ The attacker replays the counter, so the new write ④ reuses the
    // same pad.
    let mut new_plaintext = [0u8; 64];
    new_plaintext[0] = 0x1A;
    let new_ciphertext = otp.encrypt_block64(block_addr, counter, &new_plaintext);
    // C₁ ⊕ P₁ = OTP, so P₂ = C₂ ⊕ OTP = C₁ ⊕ P₁ ⊕ C₂.
    let pad = xor64(&old_ciphertext, &old_plaintext);
    let reconstructed = xor64(&new_ciphertext, &pad);
    (reconstructed, new_plaintext)
}

/// Whether the integrity tree detects a physical replay of a counter
/// (plus its group MAC) to a pre-writeback state. Returns `true` when
/// the defence works.
pub fn counter_replay_detected_by_tree() -> bool {
    let mut tree = IntegrityTree::new(256, [0x77; 32]);
    let leaf = 42;
    tree.record_write(leaf);
    let old = tree.snapshot_leaf(leaf);
    tree.record_write(leaf); // the victim's newer write
    tree.tamper_leaf(leaf, old.0, old.1); // physical replay
    !tree.verify(leaf)
}

/// Whether a whole-block {data, MAC, parity} replay is *accepted* (it
/// is — matching counterless security, which offers no physical-replay
/// protection either). Returns `true` when the stale data reads back
/// successfully.
pub fn whole_block_replay_accepted() -> bool {
    let mut mem = MemoryImage::new(1 << 16, [0x3B; 32]);
    let block = BlockAddr::new(5);
    let old_data = [0x22u8; 64];
    mem.write_block(block, &old_data);
    let old_raw = mem.raw_block(block).expect("just written");
    let old_counter = mem.counter_of(block);
    mem.write_block(block, &[0x33u8; 64]);
    // Physical replay of the complete tuple; the replayed parity still
    // encodes the old counter, and the authoritative counter state is
    // reverted with it (the attacker replays the counter block too —
    // which the tree would catch on the next WRITE, but reads never
    // consult the tree).
    mem.overwrite_raw(block, old_raw);
    mem.set_counter_for_test(block, old_counter);
    mem.read_block(block) == Ok(old_data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_attack_reconstructs_the_new_secret() {
        let (reconstructed, actual) = pad_reuse_leaks_new_plaintext();
        assert_eq!(reconstructed, actual);
        assert_eq!(reconstructed[0], 0x1A, "the paper's example byte");
    }

    #[test]
    fn tree_blocks_the_counter_replay() {
        assert!(counter_replay_detected_by_tree());
    }

    #[test]
    fn whole_block_replay_matches_counterless_security() {
        assert!(whole_block_replay_accepted());
    }
}
