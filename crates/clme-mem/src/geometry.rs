//! Address arithmetic: where data, counter, and tree-node words live
//! inside a backing store.
//!
//! The store is a flat array of 80-byte words. Data blocks come first
//! (one word per block), then one counter word per 64-block page, then
//! the integrity-tree node words level by level (level 0 = leaf
//! counters, one 8-ary group per word). The tree root is *not* stored —
//! it lives inside the layer, which is what makes replay detectable.

use clme_counters::split::BLOCKS_PER_COUNTER_BLOCK;

/// Data blocks covered by one counter word (a 4 KB page).
pub const PAGE_BLOCKS: u64 = BLOCKS_PER_COUNTER_BLOCK as u64;

/// Children per integrity-tree node.
pub const NODE_ARITY: u64 = 8;

/// What a stored-word index holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// The encoded data word of this block address.
    Data {
        /// Block address.
        addr: u64,
    },
    /// The counter word of this page.
    CounterBlock {
        /// Page index.
        page: u64,
    },
    /// An integrity-tree node word.
    TreeNode {
        /// Tree level (0 = leaf counters).
        level: u8,
        /// Group index within the level.
        group: u64,
    },
}

/// The word layout for a store of a given size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Geometry {
    data_blocks: u64,
    pages: u64,
    /// Counters per tree level; `level_counts[0] == pages`.
    level_counts: Vec<u64>,
    /// Node words per tree level (`ceil(level_counts / 8)`).
    node_counts: Vec<u64>,
    /// First word index of each level's node region.
    node_bases: Vec<u64>,
    total_words: u64,
}

impl Geometry {
    /// The layout for a store of `data_blocks` 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if `data_blocks` is zero.
    pub fn for_blocks(data_blocks: u64) -> Geometry {
        assert!(data_blocks > 0, "store must hold at least one block");
        let pages = data_blocks.div_ceil(PAGE_BLOCKS);
        let mut level_counts = Vec::new();
        let mut n = pages;
        loop {
            level_counts.push(n);
            if n <= NODE_ARITY {
                break;
            }
            n = n.div_ceil(NODE_ARITY);
        }
        let node_counts: Vec<u64> = level_counts
            .iter()
            .map(|c| c.div_ceil(NODE_ARITY))
            .collect();
        let mut node_bases = Vec::with_capacity(node_counts.len());
        let mut base = data_blocks + pages;
        for &count in &node_counts {
            node_bases.push(base);
            base += count;
        }
        Geometry {
            data_blocks,
            pages,
            level_counts,
            node_counts,
            node_bases,
            total_words: base,
        }
    }

    /// Number of addressable data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.data_blocks
    }

    /// Number of counter-block pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Number of integrity-tree levels.
    pub fn levels(&self) -> usize {
        self.level_counts.len()
    }

    /// Node words at `level`.
    pub fn node_count(&self, level: usize) -> u64 {
        self.node_counts[level]
    }

    /// Counters at `level` (`pages` at level 0).
    pub fn level_count(&self, level: usize) -> u64 {
        self.level_counts[level]
    }

    /// Total stored words a backend must hold.
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// The page a block address belongs to.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / PAGE_BLOCKS
    }

    /// The block's slot within its counter block.
    pub fn slot_of(&self, addr: u64) -> usize {
        (addr % PAGE_BLOCKS) as usize
    }

    /// The addressable block range of a page — [`PAGE_BLOCKS`] wide
    /// except for a partial last page, which stops at the store's edge.
    pub fn page_addr_range(&self, page: u64) -> std::ops::Range<u64> {
        debug_assert!(page < self.pages);
        let first = page * PAGE_BLOCKS;
        first..(first + PAGE_BLOCKS).min(self.data_blocks)
    }

    /// Word index of a block's data word.
    pub fn data_word(&self, addr: u64) -> u64 {
        debug_assert!(addr < self.data_blocks);
        addr
    }

    /// Word index of a page's counter word.
    pub fn counter_word(&self, page: u64) -> u64 {
        debug_assert!(page < self.pages);
        self.data_blocks + page
    }

    /// Word index of a tree-node word.
    pub fn node_word(&self, level: usize, group: u64) -> u64 {
        debug_assert!(group < self.node_counts[level]);
        self.node_bases[level] + group
    }

    /// The tree path of a page, leaf-level first: `(level, group, slot)`
    /// where `slot` indexes the page's counter inside the group's word.
    pub fn path(&self, page: u64) -> Vec<(usize, u64, usize)> {
        debug_assert!(page < self.pages);
        let mut out = Vec::with_capacity(self.levels());
        let mut idx = page;
        for level in 0..self.levels() {
            out.push((level, idx / NODE_ARITY, (idx % NODE_ARITY) as usize));
            idx /= NODE_ARITY;
        }
        out
    }

    /// Classifies a stored-word index.
    ///
    /// # Panics
    ///
    /// Panics if `word` is beyond [`Geometry::total_words`].
    pub fn classify(&self, word: u64) -> Region {
        if word < self.data_blocks {
            return Region::Data { addr: word };
        }
        if word < self.data_blocks + self.pages {
            return Region::CounterBlock {
                page: word - self.data_blocks,
            };
        }
        for (level, (&base, &count)) in self.node_bases.iter().zip(&self.node_counts).enumerate() {
            if word < base + count {
                return Region::TreeNode {
                    level: level as u8,
                    group: word - base,
                };
            }
        }
        panic!("word {word} beyond store ({} words)", self.total_words);
    }

    /// A data address whose read must traverse (and therefore verify)
    /// the given region — the probe a tamper test reads after flipping
    /// bytes there.
    pub fn probe_addr(&self, region: Region) -> u64 {
        match region {
            Region::Data { addr } => addr,
            Region::CounterBlock { page } => page * PAGE_BLOCKS,
            Region::TreeNode { level, group } => {
                // The group's first counter covers pages starting at
                // group * 8^(level+1).
                let first_page = group * NODE_ARITY.pow(level as u32 + 1);
                first_page * PAGE_BLOCKS
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_page_store() {
        let g = Geometry::for_blocks(64);
        assert_eq!(g.pages(), 1);
        assert_eq!(g.levels(), 1);
        assert_eq!(g.node_count(0), 1);
        // 64 data + 1 counter + 1 node.
        assert_eq!(g.total_words(), 66);
        assert_eq!(g.path(0), vec![(0, 0, 0)]);
    }

    #[test]
    fn partial_page_rounds_up() {
        let g = Geometry::for_blocks(65);
        assert_eq!(g.pages(), 2);
        assert_eq!(g.total_words(), 65 + 2 + 1);
        assert_eq!(g.path(1), vec![(0, 0, 1)]);
    }

    #[test]
    fn two_level_tree() {
        // 640 pages -> level 0: 640 counters / 80 nodes; level 1: 80
        // counters / 10 nodes; level 2: 10 counters / 2 nodes; level 3:
        // 2 counters / 1 node.
        let g = Geometry::for_blocks(640 * PAGE_BLOCKS);
        assert_eq!(g.pages(), 640);
        assert_eq!(g.levels(), 4);
        assert_eq!(g.node_count(0), 80);
        assert_eq!(g.node_count(1), 10);
        assert_eq!(g.node_count(2), 2);
        assert_eq!(g.node_count(3), 1);
        let path = g.path(639);
        assert_eq!(path, vec![(0, 79, 7), (1, 9, 7), (2, 1, 1), (3, 0, 1)]);
    }

    #[test]
    fn classify_round_trips_every_word() {
        let g = Geometry::for_blocks(130);
        for word in 0..g.total_words() {
            let region = g.classify(word);
            let back = match region {
                Region::Data { addr } => g.data_word(addr),
                Region::CounterBlock { page } => g.counter_word(page),
                Region::TreeNode { level, group } => g.node_word(level as usize, group),
            };
            assert_eq!(back, word, "{region:?}");
        }
    }

    #[test]
    fn probe_addr_is_in_range_and_under_region() {
        let g = Geometry::for_blocks(9 * PAGE_BLOCKS + 3);
        for word in 0..g.total_words() {
            let region = g.classify(word);
            let addr = g.probe_addr(region);
            assert!(addr < g.data_blocks(), "{region:?} probe {addr}");
            match region {
                Region::Data { addr: a } => assert_eq!(addr, a),
                Region::CounterBlock { page } => assert_eq!(g.page_of(addr), page),
                Region::TreeNode { level, group } => {
                    // Walking the probe's path must pass through the node.
                    let hit = g
                        .path(g.page_of(addr))
                        .into_iter()
                        .any(|(l, grp, _)| l == level as usize && grp == group);
                    assert!(hit, "{region:?} probe path misses the node");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = Geometry::for_blocks(0);
    }
}
