//! A sharded CLOCK cache — the one eviction policy both caching layers
//! in this crate share.
//!
//! The [`EncryptionLayer`](crate::EncryptionLayer) uses it to hold
//! verified plaintext page images (the read-side verified-page cache)
//! and the [`FileBackend`](crate::FileBackend) uses it for raw file
//! pages, so "how do we decide what stays resident" has exactly one
//! answer in this crate.
//!
//! Design: keys shard by `key % shards`, each shard owning an
//! independent `Mutex` around a fixed slab of slots, a `HashMap` index,
//! and a CLOCK hand. There is no global lock and no cross-shard
//! balancing — a shard evicts only when *its* slab is full, which keeps
//! insertion O(slots-per-shard) worst case and O(1) amortised. CLOCK
//! approximates LRU with one referenced bit per slot: lookups set the
//! bit, the sweeping hand clears it, and a slot is reclaimed when the
//! hand finds the bit already clear.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

struct Slot<V> {
    key: u64,
    value: V,
    referenced: bool,
}

struct ClockShard<V> {
    /// Fixed-capacity slab; `None` slots are free.
    slots: Vec<Option<Slot<V>>>,
    /// key → slab position.
    index: HashMap<u64, usize>,
    /// CLOCK hand: next slab position the eviction sweep examines.
    hand: usize,
}

impl<V> ClockShard<V> {
    fn new(capacity: usize) -> ClockShard<V> {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        ClockShard {
            slots,
            index: HashMap::with_capacity(capacity),
            hand: 0,
        }
    }

    /// Finds a free slot, evicting via the CLOCK sweep if the slab is
    /// full. Returns `(position, evicted_key)`.
    fn claim(&mut self) -> (usize, Option<u64>) {
        if self.index.len() < self.slots.len() {
            // A free slot exists; the hand sweep will find it (free
            // slots never have their referenced bit set).
            for _ in 0..self.slots.len() {
                let pos = self.hand;
                self.hand = (self.hand + 1) % self.slots.len();
                if self.slots[pos].is_none() {
                    return (pos, None);
                }
            }
            unreachable!("index len < slab len implies a free slot");
        }
        // Full: second-chance sweep. Terminates within two revolutions
        // because the first pass clears every referenced bit it sees.
        loop {
            let pos = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = self.slots[pos].as_mut().expect("full slab");
            if slot.referenced {
                slot.referenced = false;
            } else {
                let key = slot.key;
                self.index.remove(&key);
                self.slots[pos] = None;
                return (pos, Some(key));
            }
        }
    }
}

/// A sharded CLOCK cache from `u64` keys to values of type `V`.
///
/// Lookups borrow the cached value under the shard lock (no cloning of
/// multi-KB entries), insertions report whom they evicted, and
/// [`clear`](ClockCache::clear) empties every shard — the hammer the
/// encryption layer swings on rekey and tamper.
pub struct ClockCache<V> {
    shards: Vec<Mutex<ClockShard<V>>>,
}

impl<V> ClockCache<V> {
    /// A cache of about `capacity` entries spread over `shards` shards.
    /// Each shard gets `ceil(capacity / shards)` slots (so the true
    /// capacity rounds up); both arguments are clamped to at least 1.
    pub fn new(shards: usize, capacity: usize) -> ClockCache<V> {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        let per_shard = capacity.div_ceil(shards);
        ClockCache {
            shards: (0..shards)
                .map(|_| Mutex::new(ClockShard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> std::sync::MutexGuard<'_, ClockShard<V>> {
        self.shards[(key % self.shards.len() as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key` and applies `f` to the cached value under the
    /// shard lock, marking the slot recently used. `None` on miss.
    pub fn with<R>(&self, key: u64, f: impl FnOnce(&V) -> R) -> Option<R> {
        let mut shard = self.shard(key);
        let pos = *shard.index.get(&key)?;
        let slot = shard.slots[pos].as_mut().expect("indexed slot");
        slot.referenced = true;
        Some(f(&slot.value))
    }

    /// Looks up `key` and applies `f` to the cached value *mutably*
    /// under the shard lock (for merging partial fills into a resident
    /// entry). Marks the slot recently used. `None` on miss.
    pub fn with_mut<R>(&self, key: u64, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let mut shard = self.shard(key);
        let pos = *shard.index.get(&key)?;
        let slot = shard.slots[pos].as_mut().expect("indexed slot");
        slot.referenced = true;
        Some(f(&mut slot.value))
    }

    /// Inserts (or replaces) `key`. Returns the key this insertion
    /// evicted, if the shard's slab was full.
    pub fn insert(&self, key: u64, value: V) -> Option<u64> {
        let mut shard = self.shard(key);
        if let Some(&pos) = shard.index.get(&key) {
            let slot = shard.slots[pos].as_mut().expect("indexed slot");
            slot.value = value;
            slot.referenced = true;
            return None;
        }
        let (pos, evicted) = shard.claim();
        shard.slots[pos] = Some(Slot {
            key,
            value,
            referenced: true,
        });
        shard.index.insert(key, pos);
        evicted
    }

    /// Drops `key` if resident. Returns whether an entry was removed.
    pub fn remove(&self, key: u64) -> bool {
        let mut shard = self.shard(key);
        match shard.index.remove(&key) {
            Some(pos) => {
                shard.slots[pos] = None;
                true
            }
            None => false,
        }
    }

    /// Empties every shard. Returns how many entries were dropped.
    pub fn clear(&self) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            dropped += shard.index.len() as u64;
            shard.index.clear();
            for slot in &mut shard.slots {
                *slot = None;
            }
            shard.hand = 0;
        }
        dropped
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).index.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V> std::fmt::Debug for ClockCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClockCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_round_trip() {
        let cache: ClockCache<String> = ClockCache::new(4, 16);
        assert!(cache.is_empty());
        assert_eq!(cache.insert(7, "seven".into()), None);
        assert_eq!(cache.with(7, |v| v.clone()), Some("seven".into()));
        assert_eq!(cache.with(8, |v| v.clone()), None);
        assert_eq!(cache.len(), 1);
        assert!(cache.remove(7));
        assert!(!cache.remove(7));
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let cache: ClockCache<u32> = ClockCache::new(1, 2);
        cache.insert(1, 10);
        assert_eq!(cache.insert(1, 11), None);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.with(1, |v| *v), Some(11));
    }

    #[test]
    fn with_mut_mutates_in_place() {
        let cache: ClockCache<Vec<u32>> = ClockCache::new(2, 4);
        cache.insert(5, vec![1]);
        cache.with_mut(5, |v| v.push(2));
        assert_eq!(cache.with(5, |v| v.clone()), Some(vec![1, 2]));
    }

    #[test]
    fn full_shard_evicts_and_reports_victim() {
        // Single shard, two slots: the third insert must evict.
        let cache: ClockCache<u64> = ClockCache::new(1, 2);
        assert_eq!(cache.insert(1, 0), None);
        assert_eq!(cache.insert(2, 0), None);
        let evicted = cache.insert(3, 0).expect("full slab must evict");
        assert!(evicted == 1 || evicted == 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.with(evicted, |_| ()).is_none());
        assert!(cache.with(3, |_| ()).is_some());
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let cache: ClockCache<u64> = ClockCache::new(1, 2);
        cache.insert(1, 0);
        cache.insert(2, 0);
        // Full slab, both referenced: the sweep clears both bits on its
        // first revolution and takes slot 0 (key 1) on the second.
        assert_eq!(cache.insert(3, 0), Some(1));
        // Now key 3 is referenced (fresh insert) and key 2 is not: the
        // hand lands on the unreferenced key 2 and key 3 survives.
        assert_eq!(cache.insert(4, 0), Some(2));
        assert!(cache.with(3, |_| ()).is_some());
        assert!(cache.with(4, |_| ()).is_some());
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache: ClockCache<u8> = ClockCache::new(4, 8);
        for k in 0..8u64 {
            cache.insert(k, k as u8);
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.clear(), 8);
        assert!(cache.is_empty());
        assert_eq!(cache.clear(), 0);
        // Usable after clearing.
        cache.insert(3, 3);
        assert_eq!(cache.with(3, |v| *v), Some(3));
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: ClockCache<u8> = ClockCache::new(4, 4);
        // One key per shard: no shard is full, so no evictions.
        for k in 0..4u64 {
            assert_eq!(cache.insert(k, 0), None);
        }
        assert_eq!(cache.len(), 4);
        // A fifth key landing in shard 0 (4 % 4 == 0) evicts key 0.
        assert_eq!(cache.insert(4, 0), Some(0));
    }
}
