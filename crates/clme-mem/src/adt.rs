//! The plaintext-facing memory abstract data type.
//!
//! The shape follows Cosmian findex's `MemoryADT`: a thread-safe,
//! batch-oriented word store that an encryption layer can wrap while
//! implementing the same trait itself. Here the word is the 64-byte
//! memory block every other crate in the workspace works in.

use crate::error::MemError;

/// Bytes per plaintext block (one DDR burst, the paper's unit).
pub const BLOCK_BYTES: usize = 64;

/// One plaintext memory block.
pub type Block = [u8; BLOCK_BYTES];

/// A thread-safe, batch-oriented store of 64-byte blocks.
///
/// Implementations take `&self` for both directions — interior locking
/// is the implementation's concern — so a layer can be shared across
/// threads behind a plain reference or an `Arc`.
pub trait MemoryAdt: Send + Sync {
    /// Number of addressable blocks.
    fn blocks(&self) -> u64;

    /// Reads the blocks at `addrs`, in order. Duplicates are allowed.
    fn batch_read(&self, addrs: &[u64]) -> Result<Vec<Block>, MemError>;

    /// Writes the given `(addr, block)` pairs. Writes to the same
    /// address apply in slice order; the batch as a whole is not
    /// atomic (each block individually is).
    fn batch_write(&self, writes: &[(u64, Block)]) -> Result<(), MemError>;

    /// Convenience single-block read.
    fn read_block(&self, addr: u64) -> Result<Block, MemError> {
        Ok(self.batch_read(std::slice::from_ref(&addr))?[0])
    }

    /// Convenience single-block write.
    fn write_block(&self, addr: u64, block: &Block) -> Result<(), MemError> {
        self.batch_write(&[(addr, *block)])
    }
}
