//! Always-on production telemetry for the encryption layer.
//!
//! [`MemMetrics`] is built from the atomic primitives in
//! [`clme_obs::registry`]: relaxed counters, gauges, and per-thread
//! sharded log2 histograms, so the hot paths pay a handful of relaxed
//! RMWs and a few host-clock reads per operation — never a lock, never
//! an allocation. What it watches, per the scaling roadmap:
//!
//! * **Lock contention** — wait- and hold-time histograms per page-shard
//!   lock (the finer-locking work item needs a before/after).
//! * **Crypto stages** — tree walk, MAC verify, pad generation, and
//!   metadata commit latencies, split by operation class (single read /
//!   single write / whole batch call).
//! * **Store behaviour** — [`StoreMetrics`]: word traffic, the file
//!   backend's page-cache hit/miss/eviction counts, and file I/O ops.
//! * **Ciphertext-write observation counters** — per-page counts of how
//!   many ciphertexts an adversary watching the store has seen for that
//!   page (CipherGuard's leakage budget, here as a first-class metric).
//! * **Rekey progress and key age** — sweep progress gauges, key dwell
//!   time, and the dwell of the key just retired (Security Through
//!   Amnesia's lifetime concern, live instead of test-only).
//!
//! Compiling the crate with the `telemetry-off` feature replaces every
//! type in this module with a zero-sized, no-op twin: [`Stamp::now`]
//! stops reading the clock and every record call compiles to nothing.
//! The `ci.sh` overhead gate benches both builds and fails the PR if
//! the always-on default costs more than 3% throughput.
//!
//! Snapshot types ([`MemMetricsSnapshot`] and friends) are compiled in
//! both modes so callers (the `clme mem --stats` pipeline) are
//! feature-agnostic; under `telemetry-off` a snapshot is simply empty.

use clme_obs::Log2Histogram;
use clme_types::json::JsonValue;

#[cfg(not(feature = "telemetry-off"))]
use clme_obs::registry::{Counter, Gauge, Registry, Sample, ShardedHistogram};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::Arc;
#[cfg(not(feature = "telemetry-off"))]
use std::time::Instant;

#[cfg(feature = "telemetry-off")]
use clme_obs::registry::Sample;

use std::time::Duration;

/// Operation classes the per-op histograms split on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// One block read (per-block latency inside any read call).
    Read = 0,
    /// One block written (per-block latency inside any write call).
    Write = 1,
    /// A whole `batch_read`/`batch_write` call, any size.
    Batch = 2,
}

/// Number of [`MemOp`] classes.
pub const MEM_OPS: usize = 3;

impl MemOp {
    /// All classes, index order.
    pub const ALL: [MemOp; MEM_OPS] = [MemOp::Read, MemOp::Write, MemOp::Batch];

    /// Stable lower-case name (label value in the Prometheus output).
    pub fn name(self) -> &'static str {
        match self {
            MemOp::Read => "read",
            MemOp::Write => "write",
            MemOp::Batch => "batch",
        }
    }
}

/// Crypto pipeline stages the layer times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemStage {
    /// Root → tree path → counter word verification.
    TreeWalk = 0,
    /// Data-block MAC check (reads; write-side only on page rolls).
    MacVerify = 1,
    /// AES pad generation + encrypt (CTR) or XTS work.
    PadGen = 2,
    /// Metadata bump + reseal + write-back.
    Commit = 3,
}

/// Number of [`MemStage`]s.
pub const MEM_STAGES: usize = 4;

impl MemStage {
    /// All stages, index order.
    pub const ALL: [MemStage; MEM_STAGES] = [
        MemStage::TreeWalk,
        MemStage::MacVerify,
        MemStage::PadGen,
        MemStage::Commit,
    ];

    /// Stable dashed name (label value in the Prometheus output).
    pub fn name(self) -> &'static str {
        match self {
            MemStage::TreeWalk => "tree-walk",
            MemStage::MacVerify => "mac-verify",
            MemStage::PadGen => "pad-gen",
            MemStage::Commit => "commit",
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot types (compiled in both modes)
// ---------------------------------------------------------------------

/// Latency summary for one [`MemOp`] class.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// End-to-end latency of the class.
    pub latency: Log2Histogram,
    /// Per-[`MemStage`] latencies inside the class.
    pub stages: [Log2Histogram; MEM_STAGES],
}

/// Rekey-sweep progress and key-lifetime gauges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RekeyStats {
    /// Completed sweeps.
    pub sweeps: u64,
    /// Pages in the sweep currently running (or the last one).
    pub pages_total: u64,
    /// Pages already re-encrypted by that sweep.
    pub pages_done: u64,
    /// Whether a sweep holds the layer right now.
    pub in_progress: bool,
    /// Milliseconds the current master key has been live.
    pub key_dwell_ms: u64,
    /// Wall milliseconds the last completed sweep took.
    pub last_sweep_ms: u64,
    /// How long the previously retired key had been live, in ms.
    pub last_old_key_dwell_ms: u64,
}

/// Backend counters out of [`StoreMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Stored words read.
    pub words_read: u64,
    /// Stored words written.
    pub words_written: u64,
    /// File-backend page-cache hits.
    pub page_cache_hits: u64,
    /// File-backend page-cache misses (each one is a file read).
    pub page_cache_misses: u64,
    /// Cache fills that displaced a different live page (both causes).
    pub page_cache_evictions: u64,
    /// Evictions caused by a read-miss fill.
    pub page_cache_read_fill_evictions: u64,
    /// Evictions caused by a write-allocate fill.
    pub page_cache_write_fill_evictions: u64,
    /// Positioned file reads issued.
    pub file_reads: u64,
    /// Positioned file writes issued.
    pub file_writes: u64,
}

impl StoreStats {
    /// Page-cache hit rate in `[0, 1]` (0 when the backend has no cache
    /// or saw no traffic).
    pub fn page_cache_hit_rate(&self) -> f64 {
        let total = self.page_cache_hits + self.page_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.page_cache_hits as f64 / total as f64
        }
    }

    // Saturating: a baseline that is not an earlier state of the same
    // backend (snapshot kept across a reattach, or swapped between
    // layers) clamps to zero instead of wrapping.
    fn delta_since(&self, base: &StoreStats) -> StoreStats {
        StoreStats {
            words_read: self.words_read.saturating_sub(base.words_read),
            words_written: self.words_written.saturating_sub(base.words_written),
            page_cache_hits: self.page_cache_hits.saturating_sub(base.page_cache_hits),
            page_cache_misses: self.page_cache_misses.saturating_sub(base.page_cache_misses),
            page_cache_evictions: self
                .page_cache_evictions
                .saturating_sub(base.page_cache_evictions),
            page_cache_read_fill_evictions: self
                .page_cache_read_fill_evictions
                .saturating_sub(base.page_cache_read_fill_evictions),
            page_cache_write_fill_evictions: self
                .page_cache_write_fill_evictions
                .saturating_sub(base.page_cache_write_fill_evictions),
            file_reads: self.file_reads.saturating_sub(base.file_reads),
            file_writes: self.file_writes.saturating_sub(base.file_writes),
        }
    }
}

/// Why the verified-page cache dropped entries. The discriminants are
/// the on-wire `a` codes of [`FlightKind::CachePurge`](crate::FlightKind)
/// events, so they are append-only like the kinds themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CacheCause {
    /// A `batch_write` invalidated the page it mutated.
    Write = 0,
    /// A rekey sweep retired the key every entry was verified under.
    Rekey = 1,
    /// An integrity error made every cached verification suspect.
    Tamper = 2,
    /// The backend's write generation moved without the layer writing —
    /// someone else touched the store underneath us.
    Foreign = 3,
}

/// Number of [`CacheCause`]s.
pub const CACHE_CAUSES: usize = 4;

impl CacheCause {
    /// All causes, discriminant order.
    pub const ALL: [CacheCause; CACHE_CAUSES] = [
        CacheCause::Write,
        CacheCause::Rekey,
        CacheCause::Tamper,
        CacheCause::Foreign,
    ];

    /// Stable lower-case name (label value in the Prometheus output).
    pub fn name(self) -> &'static str {
        match self {
            CacheCause::Write => "write",
            CacheCause::Rekey => "rekey",
            CacheCause::Tamper => "tamper",
            CacheCause::Foreign => "foreign",
        }
    }

    /// The stable flight-event code.
    pub fn code(self) -> u64 {
        self as u64
    }
}

/// Verified-page cache counters out of [`MemMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page visits fully served from the cache (no store I/O, no MAC).
    pub hits: u64,
    /// Page visits that reused the verified counter block but had to
    /// fetch some blocks (tree walk skipped, block MACs still checked).
    pub partial_hits: u64,
    /// Page visits that found nothing and ran the full verification.
    pub misses: u64,
    /// Entries inserted or extended after a verified fetch.
    pub fills: u64,
    /// Entries displaced by the CLOCK policy to stay within capacity.
    pub evictions: u64,
    /// Page visits that skipped the cache (layer configured with
    /// `cache_pages = 0`).
    pub bypasses: u64,
    /// Entries dropped, by [`CacheCause`] (discriminant order).
    pub invalidations: [u64; CACHE_CAUSES],
    /// Whole-cache purges forced by a foreign write generation.
    pub foreign_purges: u64,
    /// Pages resident when the snapshot was taken (gauge).
    pub resident_pages: u64,
}

impl CacheStats {
    /// Full-hit rate over all cache-consulting page visits, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.partial_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Entries dropped for `cause`.
    pub fn invalidated(&self, cause: CacheCause) -> u64 {
        self.invalidations[cause as usize]
    }

    // Saturating for the same reason as [`StoreStats::delta_since`]: a
    // baseline newer than `self` yields zeros, never a wrapped count.
    fn delta_since(&self, base: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(base.hits),
            partial_hits: self.partial_hits.saturating_sub(base.partial_hits),
            misses: self.misses.saturating_sub(base.misses),
            fills: self.fills.saturating_sub(base.fills),
            evictions: self.evictions.saturating_sub(base.evictions),
            bypasses: self.bypasses.saturating_sub(base.bypasses),
            invalidations: core::array::from_fn(|i| {
                self.invalidations[i].saturating_sub(base.invalidations[i])
            }),
            foreign_purges: self.foreign_purges.saturating_sub(base.foreign_purges),
            resident_pages: self.resident_pages,
        }
    }
}

/// A point-in-time copy of every metric [`MemMetrics`] keeps.
///
/// Because every underlying counter and histogram is monotonic, two
/// snapshots bracket the traffic between them: [`delta_since`]
/// ([`MemMetricsSnapshot::delta_since`]) is the `--watch` epoch idiom,
/// exactly like [`Log2Histogram::delta_since`] in the simulator's
/// `SeriesRecorder`.
#[derive(Clone, Debug, Default)]
pub struct MemMetricsSnapshot {
    /// Per-class latency + stage histograms, indexed by [`MemOp`].
    pub ops: Vec<OpStats>,
    /// Per page-shard lock wait-time histograms.
    pub lock_wait: Vec<Log2Histogram>,
    /// Per page-shard lock hold-time histograms.
    pub lock_hold: Vec<Log2Histogram>,
    /// Blocks decrypted for callers.
    pub blocks_read: u64,
    /// Blocks encrypted for callers.
    pub blocks_written: u64,
    /// `batch_read` calls.
    pub batch_reads: u64,
    /// `batch_write` calls.
    pub batch_writes: u64,
    /// Operations that failed integrity verification.
    pub integrity_errors: u64,
    /// Page rolls (whole-page re-encryptions on minor-counter overflow).
    pub page_rolls: u64,
    /// Reads served from counterless (XTS) blocks.
    pub counterless_reads: u64,
    /// Writes landing on counterless (XTS) blocks.
    pub counterless_writes: u64,
    /// Ciphertext writes an observer of the store has seen, total.
    pub observed_writes_total: u64,
    /// Largest per-page observation count.
    pub observed_writes_max: u64,
    /// The page holding that largest count.
    pub observed_writes_max_page: u64,
    /// Rekey progress and key-age gauges.
    pub rekey: RekeyStats,
    /// Verified-page cache counters.
    pub cache: CacheStats,
    /// Blocks-per-page-visit distribution of batch reads. Recorded as
    /// raw block counts scaled by 1000, so the histogram's "ns" fields
    /// read directly as block counts.
    pub fanin_read: Log2Histogram,
    /// Blocks-per-page-visit distribution of batch writes (same scale).
    pub fanin_write: Log2Histogram,
    /// Backend counters (zero if the backend keeps none).
    pub store: StoreStats,
}

fn hist_json(h: &Log2Histogram) -> JsonValue {
    let ns = |ps: u64| ps as f64 / 1000.0;
    JsonValue::Obj(vec![
        ("count".into(), JsonValue::Num(h.count() as f64)),
        ("p50_ns".into(), JsonValue::Num(ns(h.percentile_ps(0.50)))),
        ("p95_ns".into(), JsonValue::Num(ns(h.percentile_ps(0.95)))),
        ("p99_ns".into(), JsonValue::Num(ns(h.percentile_ps(0.99)))),
        ("mean_ns".into(), JsonValue::Num(h.mean_ps() / 1000.0)),
        ("max_ns".into(), JsonValue::Num(ns(h.max_ps()))),
    ])
}

fn fanin_json(h: &Log2Histogram) -> JsonValue {
    // Fan-in histograms store blocks × 1000 in the picosecond slots, so
    // dividing the "ps" accessors by 1000 recovers plain block counts.
    let blocks = |ps: u64| ps as f64 / 1000.0;
    JsonValue::Obj(vec![
        ("count".into(), JsonValue::Num(h.count() as f64)),
        ("p50_blocks".into(), JsonValue::Num(blocks(h.percentile_ps(0.50)))),
        ("p99_blocks".into(), JsonValue::Num(blocks(h.percentile_ps(0.99)))),
        ("mean_blocks".into(), JsonValue::Num(h.mean_ps() / 1000.0)),
        ("max_blocks".into(), JsonValue::Num(blocks(h.max_ps()))),
    ])
}

impl MemMetricsSnapshot {
    /// An empty snapshot shaped for `shards` lock shards.
    pub fn empty(shards: usize) -> MemMetricsSnapshot {
        MemMetricsSnapshot {
            ops: (0..MEM_OPS).map(|_| OpStats::default()).collect(),
            lock_wait: vec![Log2Histogram::new(); shards],
            lock_hold: vec![Log2Histogram::new(); shards],
            ..MemMetricsSnapshot::default()
        }
    }

    /// Latency stats for one op class (empty stats if the snapshot was
    /// taken with telemetry compiled out).
    pub fn op(&self, op: MemOp) -> OpStats {
        self.ops.get(op as usize).cloned().unwrap_or_default()
    }

    /// The traffic between `base` (an earlier snapshot of the same
    /// layer) and `self`. Monotonic values subtract; gauges (rekey
    /// progress, observation maxima) keep their current level.
    ///
    /// Every subtraction saturates at zero: a baseline that is *not* an
    /// earlier state of the same layer (it outlived a purge or rekey, or
    /// was taken from a different layer) degrades to an empty-or-smaller
    /// delta instead of wrapping into garbage counts.
    pub fn delta_since(&self, base: &MemMetricsSnapshot) -> MemMetricsSnapshot {
        let hist_delta = |a: &[Log2Histogram], b: &[Log2Histogram]| -> Vec<Log2Histogram> {
            a.iter()
                .enumerate()
                .map(|(i, h)| match b.get(i) {
                    Some(bh) => h.delta_since(bh),
                    None => h.clone(),
                })
                .collect()
        };
        MemMetricsSnapshot {
            ops: self
                .ops
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    let empty = OpStats::default();
                    let b = base.ops.get(i).unwrap_or(&empty);
                    OpStats {
                        latency: o.latency.delta_since(&b.latency),
                        stages: core::array::from_fn(|s| o.stages[s].delta_since(&b.stages[s])),
                    }
                })
                .collect(),
            lock_wait: hist_delta(&self.lock_wait, &base.lock_wait),
            lock_hold: hist_delta(&self.lock_hold, &base.lock_hold),
            blocks_read: self.blocks_read.saturating_sub(base.blocks_read),
            blocks_written: self.blocks_written.saturating_sub(base.blocks_written),
            batch_reads: self.batch_reads.saturating_sub(base.batch_reads),
            batch_writes: self.batch_writes.saturating_sub(base.batch_writes),
            integrity_errors: self.integrity_errors.saturating_sub(base.integrity_errors),
            page_rolls: self.page_rolls.saturating_sub(base.page_rolls),
            counterless_reads: self.counterless_reads.saturating_sub(base.counterless_reads),
            counterless_writes: self.counterless_writes.saturating_sub(base.counterless_writes),
            observed_writes_total: self
                .observed_writes_total
                .saturating_sub(base.observed_writes_total),
            observed_writes_max: self.observed_writes_max,
            observed_writes_max_page: self.observed_writes_max_page,
            rekey: self.rekey.clone(),
            cache: self.cache.delta_since(&base.cache),
            fanin_read: self.fanin_read.delta_since(&base.fanin_read),
            fanin_write: self.fanin_write.delta_since(&base.fanin_write),
            store: self.store.delta_since(&base.store),
        }
    }

    /// The machine-readable form of the whole snapshot, the `stats`
    /// object inside `BENCH_mem.json` and `--stats-json` output.
    pub fn to_json(&self) -> JsonValue {
        let ops = JsonValue::Obj(
            MemOp::ALL
                .iter()
                .map(|&op| {
                    let stats = self.op(op);
                    let mut fields = vec![("latency".into(), hist_json(&stats.latency))];
                    fields.push((
                        "stages".into(),
                        JsonValue::Obj(
                            MemStage::ALL
                                .iter()
                                .map(|&s| (s.name().into(), hist_json(&stats.stages[s as usize])))
                                .collect(),
                        ),
                    ));
                    (op.name().into(), JsonValue::Obj(fields))
                })
                .collect(),
        );
        let shard_hists = |hists: &[Log2Histogram]| {
            JsonValue::Arr(
                hists
                    .iter()
                    .enumerate()
                    .map(|(i, h)| {
                        let mut obj = vec![("shard".into(), JsonValue::Num(i as f64))];
                        if let JsonValue::Obj(fields) = hist_json(h) {
                            obj.extend(fields);
                        }
                        JsonValue::Obj(obj)
                    })
                    .collect(),
            )
        };
        JsonValue::Obj(vec![
            ("ops".into(), ops),
            ("lock_wait".into(), shard_hists(&self.lock_wait)),
            ("lock_hold".into(), shard_hists(&self.lock_hold)),
            (
                "counters".into(),
                JsonValue::Obj(vec![
                    ("blocks_read".into(), JsonValue::Num(self.blocks_read as f64)),
                    ("blocks_written".into(), JsonValue::Num(self.blocks_written as f64)),
                    ("batch_reads".into(), JsonValue::Num(self.batch_reads as f64)),
                    ("batch_writes".into(), JsonValue::Num(self.batch_writes as f64)),
                    (
                        "integrity_errors".into(),
                        JsonValue::Num(self.integrity_errors as f64),
                    ),
                    ("page_rolls".into(), JsonValue::Num(self.page_rolls as f64)),
                    (
                        "counterless_reads".into(),
                        JsonValue::Num(self.counterless_reads as f64),
                    ),
                    (
                        "counterless_writes".into(),
                        JsonValue::Num(self.counterless_writes as f64),
                    ),
                ]),
            ),
            (
                "observation".into(),
                JsonValue::Obj(vec![
                    (
                        "ciphertext_writes_total".into(),
                        JsonValue::Num(self.observed_writes_total as f64),
                    ),
                    (
                        "ciphertext_writes_max".into(),
                        JsonValue::Num(self.observed_writes_max as f64),
                    ),
                    (
                        "ciphertext_writes_max_page".into(),
                        JsonValue::Num(self.observed_writes_max_page as f64),
                    ),
                ]),
            ),
            (
                "rekey".into(),
                JsonValue::Obj(vec![
                    ("sweeps".into(), JsonValue::Num(self.rekey.sweeps as f64)),
                    ("pages_total".into(), JsonValue::Num(self.rekey.pages_total as f64)),
                    ("pages_done".into(), JsonValue::Num(self.rekey.pages_done as f64)),
                    ("in_progress".into(), JsonValue::Bool(self.rekey.in_progress)),
                    ("key_dwell_ms".into(), JsonValue::Num(self.rekey.key_dwell_ms as f64)),
                    ("last_sweep_ms".into(), JsonValue::Num(self.rekey.last_sweep_ms as f64)),
                    (
                        "last_old_key_dwell_ms".into(),
                        JsonValue::Num(self.rekey.last_old_key_dwell_ms as f64),
                    ),
                ]),
            ),
            (
                "verify_cache".into(),
                JsonValue::Obj(vec![
                    ("hits".into(), JsonValue::Num(self.cache.hits as f64)),
                    ("partial_hits".into(), JsonValue::Num(self.cache.partial_hits as f64)),
                    ("misses".into(), JsonValue::Num(self.cache.misses as f64)),
                    ("hit_rate".into(), JsonValue::Num(self.cache.hit_rate())),
                    ("fills".into(), JsonValue::Num(self.cache.fills as f64)),
                    ("evictions".into(), JsonValue::Num(self.cache.evictions as f64)),
                    ("bypasses".into(), JsonValue::Num(self.cache.bypasses as f64)),
                    (
                        "invalidations".into(),
                        JsonValue::Obj(
                            CacheCause::ALL
                                .iter()
                                .map(|&c| {
                                    (
                                        c.name().into(),
                                        JsonValue::Num(self.cache.invalidated(c) as f64),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "foreign_purges".into(),
                        JsonValue::Num(self.cache.foreign_purges as f64),
                    ),
                    (
                        "resident_pages".into(),
                        JsonValue::Num(self.cache.resident_pages as f64),
                    ),
                ]),
            ),
            (
                "fanin".into(),
                JsonValue::Obj(vec![
                    ("read".into(), fanin_json(&self.fanin_read)),
                    ("write".into(), fanin_json(&self.fanin_write)),
                ]),
            ),
            (
                "store".into(),
                JsonValue::Obj(vec![
                    ("words_read".into(), JsonValue::Num(self.store.words_read as f64)),
                    ("words_written".into(), JsonValue::Num(self.store.words_written as f64)),
                    (
                        "page_cache_hits".into(),
                        JsonValue::Num(self.store.page_cache_hits as f64),
                    ),
                    (
                        "page_cache_misses".into(),
                        JsonValue::Num(self.store.page_cache_misses as f64),
                    ),
                    (
                        "page_cache_evictions".into(),
                        JsonValue::Num(self.store.page_cache_evictions as f64),
                    ),
                    (
                        "page_cache_read_fill_evictions".into(),
                        JsonValue::Num(self.store.page_cache_read_fill_evictions as f64),
                    ),
                    (
                        "page_cache_write_fill_evictions".into(),
                        JsonValue::Num(self.store.page_cache_write_fill_evictions as f64),
                    ),
                    (
                        "page_cache_hit_rate".into(),
                        JsonValue::Num(self.store.page_cache_hit_rate()),
                    ),
                    ("file_reads".into(), JsonValue::Num(self.store.file_reads as f64)),
                    ("file_writes".into(), JsonValue::Num(self.store.file_writes as f64)),
                ]),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Live metrics — real implementation
// ---------------------------------------------------------------------

/// A host-clock mark. With telemetry on this is an [`Instant`]; under
/// `telemetry-off` it is a zero-sized token and [`Stamp::now`] does not
/// read the clock, so instrumentation sites cost literally nothing.
#[cfg(not(feature = "telemetry-off"))]
#[derive(Clone, Copy, Debug)]
pub struct Stamp(Instant);

#[cfg(not(feature = "telemetry-off"))]
impl Stamp {
    /// The current instant.
    #[inline]
    pub fn now() -> Stamp {
        Stamp(Instant::now())
    }

    #[inline]
    fn since(self, earlier: Stamp) -> Duration {
        self.0.saturating_duration_since(earlier.0)
    }

    /// Nanoseconds since `earlier` (zero under `telemetry-off`). Lets
    /// instrumentation sites compare an already-taken probe against a
    /// threshold — e.g. the flight recorder's slow-lock event — without
    /// reaching into the `Instant`.
    #[inline]
    pub fn since_ns(self, earlier: Stamp) -> u64 {
        u64::try_from(self.since(earlier).as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Every `SAMPLE_EVERY`-th [`MemMetrics::sample`] call per thread says
/// yes; the rest skip the clock-reading probes entirely.
#[cfg(not(feature = "telemetry-off"))]
const SAMPLE_EVERY: u64 = 8;

/// The read path's own, rarer period: with the verified-page cache a
/// hot read page-visit finishes in a couple hundred nanoseconds, so
/// even at 1-in-8 its probe set (lock stamps, fan-in, flight ring) is
/// visible against the 3% telemetry budget. 1-in-64 keeps every
/// distribution populated under real traffic at ~1/8 the cost.
#[cfg(not(feature = "telemetry-off"))]
const READ_SAMPLE_EVERY: u64 = 64;

#[cfg(not(feature = "telemetry-off"))]
thread_local! {
    static SAMPLE_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static READ_SAMPLE_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[cfg(not(feature = "telemetry-off"))]
struct OpHandles {
    latency: Arc<ShardedHistogram>,
    stages: [Arc<ShardedHistogram>; MEM_STAGES],
}

/// Live telemetry for one [`EncryptionLayer`](crate::EncryptionLayer).
///
/// Handles are registered once at layer construction in an internal
/// [`Registry`]; the record methods below are the hot path (relaxed
/// atomics, no locks, no allocation) and the snapshot/exposition
/// methods are the cold path.
#[cfg(not(feature = "telemetry-off"))]
pub struct MemMetrics {
    registry: Registry,
    ops: Vec<OpHandles>,
    lock_wait: Vec<Arc<ShardedHistogram>>,
    lock_hold: Vec<Arc<ShardedHistogram>>,
    blocks_read: Arc<Counter>,
    blocks_written: Arc<Counter>,
    batch_reads: Arc<Counter>,
    batch_writes: Arc<Counter>,
    integrity_errors: Arc<Counter>,
    page_rolls: Arc<Counter>,
    counterless_reads: Arc<Counter>,
    counterless_writes: Arc<Counter>,
    observed_total: Arc<Counter>,
    observed: Vec<AtomicU64>,
    observed_max: Arc<Gauge>,
    observed_max_page: Arc<Gauge>,
    cache_hits: Arc<Counter>,
    cache_partial_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_fills: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_bypasses: Arc<Counter>,
    cache_invalidations: [Arc<Counter>; CACHE_CAUSES],
    cache_foreign_purges: Arc<Counter>,
    cache_resident: Arc<Gauge>,
    fanin_read: Arc<ShardedHistogram>,
    fanin_write: Arc<ShardedHistogram>,
    rekey_sweeps: Arc<Counter>,
    rekey_pages_total: Arc<Gauge>,
    rekey_pages_done: Arc<Gauge>,
    rekey_in_progress: Arc<Gauge>,
    key_dwell_ms: Arc<Gauge>,
    rekey_last_ms: Arc<Gauge>,
    old_key_dwell_ms: Arc<Gauge>,
    epoch: Instant,
    key_epoch_ms: AtomicU64,
    sweep_start_ms: AtomicU64,
}

#[cfg(not(feature = "telemetry-off"))]
impl MemMetrics {
    /// Builds the full metric set for a layer with `lock_shards` page
    /// shards over `pages` pages.
    pub fn new(lock_shards: usize, pages: u64) -> MemMetrics {
        let registry = Registry::new();
        let ok = "static metric names are valid";
        let mut ops = Vec::with_capacity(MEM_OPS);
        for op in MemOp::ALL {
            let latency = registry
                .histogram(
                    "clme_mem_op_latency_ps",
                    "end-to-end operation latency",
                    &[("op", op.name())],
                )
                .expect(ok);
            let stages = core::array::from_fn(|s| {
                registry
                    .histogram(
                        "clme_mem_stage_latency_ps",
                        "crypto pipeline stage latency",
                        &[("op", op.name()), ("stage", MemStage::ALL[s].name())],
                    )
                    .expect(ok)
            });
            ops.push(OpHandles { latency, stages });
        }
        let mut lock_wait = Vec::with_capacity(lock_shards);
        let mut lock_hold = Vec::with_capacity(lock_shards);
        for shard in 0..lock_shards {
            let label = shard.to_string();
            lock_wait.push(
                registry
                    .histogram(
                        "clme_mem_lock_wait_ps",
                        "page-shard lock wait time",
                        &[("shard", &label)],
                    )
                    .expect(ok),
            );
            lock_hold.push(
                registry
                    .histogram(
                        "clme_mem_lock_hold_ps",
                        "page-shard lock hold time",
                        &[("shard", &label)],
                    )
                    .expect(ok),
            );
        }
        let counter = |name: &str, help: &str| registry.counter(name, help, &[]).expect(ok);
        let gauge = |name: &str, help: &str| registry.gauge(name, help, &[]).expect(ok);
        MemMetrics {
            ops,
            lock_wait,
            lock_hold,
            blocks_read: counter("clme_mem_blocks_read_total", "blocks decrypted for callers"),
            blocks_written: counter("clme_mem_blocks_written_total", "blocks encrypted for callers"),
            batch_reads: counter("clme_mem_batch_reads_total", "batch_read calls"),
            batch_writes: counter("clme_mem_batch_writes_total", "batch_write calls"),
            integrity_errors: counter(
                "clme_mem_integrity_errors_total",
                "operations failing integrity verification",
            ),
            page_rolls: counter("clme_mem_page_rolls_total", "whole-page re-encryptions"),
            counterless_reads: counter(
                "clme_mem_counterless_reads_total",
                "reads from counterless (XTS) blocks",
            ),
            counterless_writes: counter(
                "clme_mem_counterless_writes_total",
                "writes to counterless (XTS) blocks",
            ),
            observed_total: counter(
                "clme_mem_ciphertext_writes_total",
                "ciphertext writes visible to a store observer",
            ),
            observed: (0..pages).map(|_| AtomicU64::new(0)).collect(),
            observed_max: gauge(
                "clme_mem_ciphertext_writes_max",
                "largest per-page observation count",
            ),
            observed_max_page: gauge(
                "clme_mem_ciphertext_writes_max_page",
                "page with the largest observation count",
            ),
            cache_hits: counter(
                "clme_mem_cache_hits_total",
                "page visits fully served from the verified-page cache",
            ),
            cache_partial_hits: counter(
                "clme_mem_cache_partial_hits_total",
                "page visits reusing a cached counter block but fetching blocks",
            ),
            cache_misses: counter(
                "clme_mem_cache_misses_total",
                "page visits running the full verification chain",
            ),
            cache_fills: counter(
                "clme_mem_cache_fills_total",
                "verified-page cache entries inserted or extended",
            ),
            cache_evictions: counter(
                "clme_mem_cache_evictions_total",
                "verified-page cache entries displaced by the CLOCK policy",
            ),
            cache_bypasses: counter(
                "clme_mem_cache_bypasses_total",
                "page visits with the verified-page cache disabled",
            ),
            cache_invalidations: core::array::from_fn(|i| {
                registry
                    .counter(
                        "clme_mem_cache_invalidations_total",
                        "verified-page cache entries dropped, by cause",
                        &[("cause", CacheCause::ALL[i].name())],
                    )
                    .expect(ok)
            }),
            cache_foreign_purges: counter(
                "clme_mem_cache_foreign_purges_total",
                "whole-cache purges forced by a foreign write generation",
            ),
            cache_resident: gauge(
                "clme_mem_cache_resident_pages",
                "pages resident in the verified-page cache",
            ),
            fanin_read: registry
                .histogram(
                    "clme_mem_batch_fanin_blocks",
                    "blocks per page visit (recorded as blocks x 1000)",
                    &[("op", "read")],
                )
                .expect(ok),
            fanin_write: registry
                .histogram(
                    "clme_mem_batch_fanin_blocks",
                    "blocks per page visit (recorded as blocks x 1000)",
                    &[("op", "write")],
                )
                .expect(ok),
            rekey_sweeps: counter("clme_mem_rekey_sweeps_total", "completed rekey sweeps"),
            rekey_pages_total: gauge("clme_mem_rekey_pages", "pages in the current/last sweep"),
            rekey_pages_done: gauge("clme_mem_rekey_pages_done", "pages swept so far"),
            rekey_in_progress: gauge("clme_mem_rekey_in_progress", "1 while a sweep runs"),
            key_dwell_ms: gauge("clme_mem_key_dwell_ms", "current master key age"),
            rekey_last_ms: gauge("clme_mem_rekey_last_ms", "duration of the last sweep"),
            old_key_dwell_ms: gauge(
                "clme_mem_old_key_dwell_ms",
                "lifetime of the most recently retired key",
            ),
            epoch: Instant::now(),
            key_epoch_ms: AtomicU64::new(0),
            sweep_start_ms: AtomicU64::new(0),
            registry,
        }
    }

    #[inline]
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The sampling decision for probes that must *read the clock* to
    /// measure (stage stamps, lock wait/hold on the batch paths): true
    /// on every [`SAMPLE_EVERY`]-th call on this thread. A host clock
    /// read costs ~35 ns; sampling keeps the latency *distributions*
    /// while bounding the per-block cost. Counters and op latencies
    /// stay exhaustive — they either don't read the clock or reuse
    /// marks the layer already collects.
    #[inline]
    pub fn sample(&self) -> bool {
        SAMPLE_TICK.with(|tick| {
            let t = tick.get();
            tick.set(t.wrapping_add(1));
            t % SAMPLE_EVERY == 0
        })
    }

    /// The read path's sampling decision: same shape as
    /// [`sample`](Self::sample) but on its own tick with the rarer
    /// [`READ_SAMPLE_EVERY`] period, because a cache-served read visit
    /// is an order of magnitude faster than anything on the write
    /// path. The first call on each thread still fires, so even a
    /// short single-threaded run populates every read-side histogram.
    #[inline]
    pub fn sample_read(&self) -> bool {
        READ_SAMPLE_TICK.with(|tick| {
            let t = tick.get();
            tick.set(t.wrapping_add(1));
            t % READ_SAMPLE_EVERY == 0
        })
    }

    /// Records a shard-lock wait interval.
    #[inline]
    pub fn lock_wait(&self, shard: usize, from: Stamp, to: Stamp) {
        self.lock_wait[shard].record_duration(to.since(from));
    }

    /// Records a shard-lock hold that started at `from` and ends now.
    #[inline]
    pub fn lock_hold(&self, shard: usize, from: Stamp) {
        self.lock_hold[shard].record_duration(Stamp::now().since(from));
    }

    /// Records an op latency from a stamp pair.
    #[inline]
    pub fn op_between(&self, op: MemOp, from: Stamp, to: Stamp) {
        self.ops[op as usize].latency.record_duration(to.since(from));
    }

    /// Records an op latency measured outside (e.g. from read marks the
    /// layer already collects for span tracing).
    #[inline]
    pub fn op_duration(&self, op: MemOp, d: Duration) {
        self.ops[op as usize].latency.record_duration(d);
    }

    /// Records `n` op latencies of the same duration in one atomic
    /// pass: a cache-served page visit answers all its blocks from one
    /// measured interval, and one weighted record keeps the latency
    /// count exhaustive (one sample per block) without paying the
    /// histogram three RMWs per block on the hottest path.
    #[inline]
    pub fn op_duration_n(&self, op: MemOp, d: Duration, n: u64) {
        self.ops[op as usize].latency.record_duration_n(d, n);
    }

    /// Records a stage latency from a stamp pair.
    #[inline]
    pub fn stage_between(&self, op: MemOp, stage: MemStage, from: Stamp, to: Stamp) {
        self.ops[op as usize].stages[stage as usize].record_duration(to.since(from));
    }

    /// Records a stage latency measured outside.
    #[inline]
    pub fn stage_duration(&self, op: MemOp, stage: MemStage, d: Duration) {
        self.ops[op as usize].stages[stage as usize].record_duration(d);
    }

    /// One `batch_read` call that decrypted `blocks` blocks.
    #[inline]
    pub fn note_read_batch(&self, blocks: u64) {
        self.batch_reads.inc();
        self.blocks_read.add(blocks);
    }

    /// One `batch_write` call that encrypted `blocks` blocks.
    #[inline]
    pub fn note_write_batch(&self, blocks: u64) {
        self.batch_writes.inc();
        self.blocks_written.add(blocks);
    }

    /// An operation failed integrity verification.
    #[inline]
    pub fn integrity_error(&self) {
        self.integrity_errors.inc();
    }

    /// A minor-counter overflow re-encrypted a whole page.
    #[inline]
    pub fn page_roll(&self) {
        self.page_rolls.inc();
    }

    /// A read hit a counterless (XTS) block.
    #[inline]
    pub fn counterless_read(&self) {
        self.counterless_reads.inc();
    }

    /// A write landed on a counterless (XTS) block.
    #[inline]
    pub fn counterless_write(&self) {
        self.counterless_writes.inc();
    }

    /// A fresh ciphertext for `page` became visible in the store.
    /// Returns the page's new observation count (0 when the page is out
    /// of range), so callers can detect write bursts without re-reading.
    #[inline]
    pub fn observe_ciphertext_write(&self, page: u64) -> u64 {
        self.observed_total.inc();
        match self.observed.get(page as usize) {
            Some(slot) => slot.fetch_add(1, Ordering::Relaxed) + 1,
            None => 0,
        }
    }

    /// Ciphertext writes observed for one page.
    pub fn observed_writes(&self, page: u64) -> u64 {
        self.observed
            .get(page as usize)
            .map(|s| s.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// A page visit was fully served from the verified-page cache.
    #[inline]
    pub fn cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// A page visit reused the cached counter block but fetched blocks.
    #[inline]
    pub fn cache_partial_hit(&self) {
        self.cache_partial_hits.inc();
    }

    /// A page visit found nothing cached and verified from the root.
    #[inline]
    pub fn cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// A verified-page cache entry was inserted or extended.
    #[inline]
    pub fn cache_fill(&self) {
        self.cache_fills.inc();
    }

    /// The CLOCK policy displaced a resident entry.
    #[inline]
    pub fn cache_evict(&self) {
        self.cache_evictions.inc();
    }

    /// A page visit skipped the cache because it is disabled.
    #[inline]
    pub fn cache_bypass(&self) {
        self.cache_bypasses.inc();
    }

    /// `entries` cache entries were dropped for `cause`.
    #[inline]
    pub fn cache_invalidated(&self, cause: CacheCause, entries: u64) {
        self.cache_invalidations[cause as usize].add(entries);
        if cause == CacheCause::Foreign {
            self.cache_foreign_purges.inc();
        }
    }

    /// Publishes the cache's current resident-page count.
    #[inline]
    pub fn set_cache_resident(&self, pages: u64) {
        self.cache_resident.set(pages);
    }

    /// One batch-read page visit touched `blocks` blocks.
    #[inline]
    pub fn fanin_read(&self, blocks: u64) {
        // The layer calls this under its per-page-visit sampling
        // decision: fan-in is a shape, not a count, and recording every
        // visit is budget-visible once the cache serves hot reads.
        self.fanin_read.record_ps(blocks.saturating_mul(1000));
    }

    /// One batch-write page visit touched `blocks` blocks.
    #[inline]
    pub fn fanin_write(&self, blocks: u64) {
        self.fanin_write.record_ps(blocks.saturating_mul(1000));
    }

    /// A rekey sweep over `pages` pages is starting (locks held).
    pub fn rekey_begin(&self, pages: u64) {
        self.rekey_pages_total.set(pages);
        self.rekey_pages_done.set(0);
        self.rekey_in_progress.set(1);
        self.sweep_start_ms.store(self.now_ms(), Ordering::Relaxed);
    }

    /// One page finished re-encrypting.
    #[inline]
    pub fn rekey_page_done(&self) {
        self.rekey_pages_done.inc();
    }

    /// The sweep finished (successfully or not). On success the old
    /// key's dwell time is recorded and the key epoch restarts.
    pub fn rekey_end(&self, ok: bool) {
        self.rekey_in_progress.set(0);
        let now = self.now_ms();
        if ok {
            self.rekey_sweeps.inc();
            self.rekey_last_ms
                .set(now - self.sweep_start_ms.load(Ordering::Relaxed));
            let key_epoch = self.key_epoch_ms.swap(now, Ordering::Relaxed);
            self.old_key_dwell_ms.set(now - key_epoch);
        }
    }

    /// Refreshes gauges derived at read time (key dwell, observation
    /// maxima) so snapshots and scrapes see current values.
    fn refresh_derived(&self) {
        self.key_dwell_ms
            .set(self.now_ms() - self.key_epoch_ms.load(Ordering::Relaxed));
        let mut max = 0u64;
        let mut max_page = 0u64;
        for (page, slot) in self.observed.iter().enumerate() {
            let v = slot.load(Ordering::Relaxed);
            if v > max {
                max = v;
                max_page = page as u64;
            }
        }
        self.observed_max.set(max);
        self.observed_max_page.set(max_page);
    }

    /// Copies every metric out, merging histogram shards. Pass the
    /// backend's [`StoreMetrics`] to fold its counters in.
    pub fn snapshot(&self, store: Option<&StoreMetrics>) -> MemMetricsSnapshot {
        self.refresh_derived();
        MemMetricsSnapshot {
            ops: self
                .ops
                .iter()
                .map(|o| OpStats {
                    latency: o.latency.merge(),
                    stages: core::array::from_fn(|s| o.stages[s].merge()),
                })
                .collect(),
            lock_wait: self.lock_wait.iter().map(|h| h.merge()).collect(),
            lock_hold: self.lock_hold.iter().map(|h| h.merge()).collect(),
            blocks_read: self.blocks_read.get(),
            blocks_written: self.blocks_written.get(),
            batch_reads: self.batch_reads.get(),
            batch_writes: self.batch_writes.get(),
            integrity_errors: self.integrity_errors.get(),
            page_rolls: self.page_rolls.get(),
            counterless_reads: self.counterless_reads.get(),
            counterless_writes: self.counterless_writes.get(),
            observed_writes_total: self.observed_total.get(),
            observed_writes_max: self.observed_max.get(),
            observed_writes_max_page: self.observed_max_page.get(),
            rekey: RekeyStats {
                sweeps: self.rekey_sweeps.get(),
                pages_total: self.rekey_pages_total.get(),
                pages_done: self.rekey_pages_done.get(),
                in_progress: self.rekey_in_progress.get() != 0,
                key_dwell_ms: self.key_dwell_ms.get(),
                last_sweep_ms: self.rekey_last_ms.get(),
                last_old_key_dwell_ms: self.old_key_dwell_ms.get(),
            },
            cache: CacheStats {
                hits: self.cache_hits.get(),
                partial_hits: self.cache_partial_hits.get(),
                misses: self.cache_misses.get(),
                fills: self.cache_fills.get(),
                evictions: self.cache_evictions.get(),
                bypasses: self.cache_bypasses.get(),
                invalidations: core::array::from_fn(|i| self.cache_invalidations[i].get()),
                foreign_purges: self.cache_foreign_purges.get(),
                resident_pages: self.cache_resident.get(),
            },
            fanin_read: self.fanin_read.merge(),
            fanin_write: self.fanin_write.merge(),
            store: store.map(|s| s.snapshot()).unwrap_or_default(),
        }
    }

    /// Every registered metric as exposition samples (the layer's plus,
    /// when given, the backend's), ready for [`clme_obs::prom::render`].
    pub fn prom_samples(&self, store: Option<&StoreMetrics>) -> Vec<Sample> {
        self.refresh_derived();
        let mut samples = self.registry.snapshot();
        if let Some(s) = store {
            samples.extend(s.registry.snapshot());
        }
        samples
    }
}

/// Per-backend store counters: word traffic, page-cache behaviour, and
/// file I/O. Backends own one and report it via
/// [`StoreBackend::store_metrics`](crate::StoreBackend::store_metrics).
#[cfg(not(feature = "telemetry-off"))]
pub struct StoreMetrics {
    registry: Registry,
    words_read: Arc<Counter>,
    words_written: Arc<Counter>,
    page_cache_hits: Arc<Counter>,
    page_cache_misses: Arc<Counter>,
    page_cache_evictions: Arc<Counter>,
    page_cache_read_fill_evictions: Arc<Counter>,
    page_cache_write_fill_evictions: Arc<Counter>,
    file_reads: Arc<Counter>,
    file_writes: Arc<Counter>,
}

#[cfg(not(feature = "telemetry-off"))]
impl StoreMetrics {
    /// Builds the counter set.
    pub fn new() -> StoreMetrics {
        let registry = Registry::new();
        let ok = "static metric names are valid";
        let counter = |name: &str, help: &str| registry.counter(name, help, &[]).expect(ok);
        StoreMetrics {
            words_read: counter("clme_store_words_read_total", "stored words read"),
            words_written: counter("clme_store_words_written_total", "stored words written"),
            page_cache_hits: counter("clme_store_page_cache_hits_total", "page-cache hits"),
            page_cache_misses: counter("clme_store_page_cache_misses_total", "page-cache misses"),
            page_cache_evictions: counter(
                "clme_store_page_cache_evictions_total",
                "cache fills displacing a live page",
            ),
            page_cache_read_fill_evictions: registry
                .counter(
                    "clme_store_page_cache_fill_evictions_total",
                    "cache-fill evictions, by the filling side",
                    &[("fill", "read")],
                )
                .expect(ok),
            page_cache_write_fill_evictions: registry
                .counter(
                    "clme_store_page_cache_fill_evictions_total",
                    "cache-fill evictions, by the filling side",
                    &[("fill", "write")],
                )
                .expect(ok),
            file_reads: counter("clme_store_file_reads_total", "positioned file reads"),
            file_writes: counter("clme_store_file_writes_total", "positioned file writes"),
            registry,
        }
    }

    /// One stored word read.
    #[inline]
    pub fn word_read(&self) {
        self.words_read.inc();
    }

    /// One stored word written.
    #[inline]
    pub fn word_written(&self) {
        self.words_written.inc();
    }

    /// A page-cache hit.
    #[inline]
    pub fn cache_hit(&self) {
        self.page_cache_hits.inc();
    }

    /// A page-cache miss.
    #[inline]
    pub fn cache_miss(&self) {
        self.page_cache_misses.inc();
    }

    /// A cache fill displaced a live page; `write_fill` says whether the
    /// filling side was a write-allocate (vs a read-miss fill).
    #[inline]
    pub fn cache_evicted(&self, write_fill: bool) {
        self.page_cache_evictions.inc();
        if write_fill {
            self.page_cache_write_fill_evictions.inc();
        } else {
            self.page_cache_read_fill_evictions.inc();
        }
    }

    /// One positioned file read.
    #[inline]
    pub fn file_read(&self) {
        self.file_reads.inc();
    }

    /// One positioned file write.
    #[inline]
    pub fn file_write(&self) {
        self.file_writes.inc();
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            words_read: self.words_read.get(),
            words_written: self.words_written.get(),
            page_cache_hits: self.page_cache_hits.get(),
            page_cache_misses: self.page_cache_misses.get(),
            page_cache_evictions: self.page_cache_evictions.get(),
            page_cache_read_fill_evictions: self.page_cache_read_fill_evictions.get(),
            page_cache_write_fill_evictions: self.page_cache_write_fill_evictions.get(),
            file_reads: self.file_reads.get(),
            file_writes: self.file_writes.get(),
        }
    }
}

#[cfg(not(feature = "telemetry-off"))]
impl Default for StoreMetrics {
    fn default() -> StoreMetrics {
        StoreMetrics::new()
    }
}

// ---------------------------------------------------------------------
// Live metrics — `telemetry-off` stubs
// ---------------------------------------------------------------------

/// Zero-sized stand-in for the host-clock mark: `now()` reads nothing.
#[cfg(feature = "telemetry-off")]
#[derive(Clone, Copy, Debug)]
pub struct Stamp;

#[cfg(feature = "telemetry-off")]
impl Stamp {
    /// A token; no clock is read.
    #[inline(always)]
    pub fn now() -> Stamp {
        Stamp
    }

    /// Always zero; no clock exists to subtract.
    #[inline(always)]
    pub fn since_ns(self, _earlier: Stamp) -> u64 {
        0
    }
}

/// No-op twin of the live metrics: every record call compiles away and
/// snapshots come back empty.
#[cfg(feature = "telemetry-off")]
#[derive(Debug, Default)]
pub struct MemMetrics;

#[cfg(feature = "telemetry-off")]
impl MemMetrics {
    /// Builds the stub (arguments ignored).
    pub fn new(_lock_shards: usize, _pages: u64) -> MemMetrics {
        MemMetrics
    }

    /// No-op.
    #[inline(always)]
    pub fn lock_wait(&self, _shard: usize, _from: Stamp, _to: Stamp) {}
    /// No-op.
    #[inline(always)]
    pub fn lock_hold(&self, _shard: usize, _from: Stamp) {}
    /// Always false: no probe ever fires.
    #[inline(always)]
    pub fn sample(&self) -> bool {
        false
    }
    /// Always false: no probe ever fires.
    #[inline(always)]
    pub fn sample_read(&self) -> bool {
        false
    }
    /// No-op.
    #[inline(always)]
    pub fn op_between(&self, _op: MemOp, _from: Stamp, _to: Stamp) {}
    /// No-op.
    #[inline(always)]
    pub fn op_duration(&self, _op: MemOp, _d: Duration) {}
    /// No-op.
    #[inline(always)]
    pub fn op_duration_n(&self, _op: MemOp, _d: Duration, _n: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn stage_between(&self, _op: MemOp, _stage: MemStage, _from: Stamp, _to: Stamp) {}
    /// No-op.
    #[inline(always)]
    pub fn stage_duration(&self, _op: MemOp, _stage: MemStage, _d: Duration) {}
    /// No-op.
    #[inline(always)]
    pub fn note_read_batch(&self, _blocks: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn note_write_batch(&self, _blocks: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn integrity_error(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn page_roll(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn counterless_read(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn counterless_write(&self) {}
    /// No-op; always zero.
    #[inline(always)]
    pub fn observe_ciphertext_write(&self, _page: u64) -> u64 {
        0
    }
    /// Always zero.
    pub fn observed_writes(&self, _page: u64) -> u64 {
        0
    }
    /// No-op.
    #[inline(always)]
    pub fn cache_hit(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_partial_hit(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_miss(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_fill(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_evict(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_bypass(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_invalidated(&self, _cause: CacheCause, _entries: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn set_cache_resident(&self, _pages: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn fanin_read(&self, _blocks: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn fanin_write(&self, _blocks: u64) {}
    /// No-op.
    pub fn rekey_begin(&self, _pages: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn rekey_page_done(&self) {}
    /// No-op.
    pub fn rekey_end(&self, _ok: bool) {}

    /// An empty snapshot.
    pub fn snapshot(&self, _store: Option<&StoreMetrics>) -> MemMetricsSnapshot {
        MemMetricsSnapshot::empty(0)
    }

    /// No samples.
    pub fn prom_samples(&self, _store: Option<&StoreMetrics>) -> Vec<Sample> {
        Vec::new()
    }
}

/// No-op twin of the backend counters.
#[cfg(feature = "telemetry-off")]
#[derive(Debug, Default)]
pub struct StoreMetrics;

#[cfg(feature = "telemetry-off")]
impl StoreMetrics {
    /// Builds the stub.
    pub fn new() -> StoreMetrics {
        StoreMetrics
    }

    /// No-op.
    #[inline(always)]
    pub fn word_read(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn word_written(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_hit(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_miss(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_evicted(&self, _write_fill: bool) {}
    /// No-op.
    #[inline(always)]
    pub fn file_read(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn file_write(&self) {}

    /// Always-zero stats.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats::default()
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;

    #[test]
    fn op_and_stage_histograms_split_by_class() {
        let m = MemMetrics::new(4, 8);
        m.op_duration(MemOp::Read, Duration::from_nanos(100));
        m.op_duration(MemOp::Write, Duration::from_nanos(200));
        m.stage_duration(MemOp::Read, MemStage::MacVerify, Duration::from_nanos(50));
        let snap = m.snapshot(None);
        assert_eq!(snap.op(MemOp::Read).latency.count(), 1);
        assert_eq!(snap.op(MemOp::Write).latency.count(), 1);
        assert_eq!(snap.op(MemOp::Batch).latency.count(), 0);
        assert_eq!(snap.op(MemOp::Read).stages[MemStage::MacVerify as usize].count(), 1);
        assert_eq!(snap.op(MemOp::Write).stages[MemStage::MacVerify as usize].count(), 0);
    }

    #[test]
    fn observation_counters_track_per_page_and_max() {
        let m = MemMetrics::new(2, 4);
        for _ in 0..3 {
            m.observe_ciphertext_write(1);
        }
        m.observe_ciphertext_write(3);
        let snap = m.snapshot(None);
        assert_eq!(snap.observed_writes_total, 4);
        assert_eq!(snap.observed_writes_max, 3);
        assert_eq!(snap.observed_writes_max_page, 1);
        assert_eq!(m.observed_writes(1), 3);
        assert_eq!(m.observed_writes(3), 1);
        // Out-of-range pages are counted in the total only.
        m.observe_ciphertext_write(99);
        assert_eq!(m.snapshot(None).observed_writes_total, 5);
    }

    #[test]
    fn rekey_gauges_progress_and_retire_keys() {
        let m = MemMetrics::new(2, 4);
        m.rekey_begin(4);
        let snap = m.snapshot(None);
        assert!(snap.rekey.in_progress);
        assert_eq!(snap.rekey.pages_total, 4);
        assert_eq!(snap.rekey.pages_done, 0);
        for _ in 0..4 {
            m.rekey_page_done();
        }
        m.rekey_end(true);
        let snap = m.snapshot(None);
        assert!(!snap.rekey.in_progress);
        assert_eq!(snap.rekey.pages_done, 4);
        assert_eq!(snap.rekey.sweeps, 1);
        // A failed sweep clears in_progress without retiring the key.
        m.rekey_begin(4);
        m.rekey_end(false);
        let snap = m.snapshot(None);
        assert!(!snap.rekey.in_progress);
        assert_eq!(snap.rekey.sweeps, 1);
    }

    #[test]
    fn snapshot_delta_brackets_traffic() {
        let m = MemMetrics::new(2, 4);
        m.note_read_batch(10);
        let base = m.snapshot(None);
        m.note_read_batch(5);
        m.op_duration(MemOp::Read, Duration::from_nanos(100));
        let delta = m.snapshot(None).delta_since(&base);
        assert_eq!(delta.blocks_read, 5);
        assert_eq!(delta.batch_reads, 1);
        assert_eq!(delta.op(MemOp::Read).latency.count(), 1);
    }

    #[test]
    fn snapshot_delta_clamps_against_newer_baseline() {
        // A snapshot that outlived a purge/rekey — or was swapped between
        // layers — can be *ahead* of the live state. Deltas must clamp
        // to zero everywhere instead of wrapping to ~u64::MAX.
        let live = MemMetrics::new(2, 4);
        live.note_read_batch(3);
        live.cache_hit();
        let newer = MemMetrics::new(2, 4);
        newer.note_read_batch(10);
        newer.note_write_batch(10);
        newer.cache_hit();
        newer.cache_hit();
        newer.cache_invalidated(CacheCause::Rekey, 7);
        newer.observe_ciphertext_write(0);
        newer.op_duration(MemOp::Read, Duration::from_nanos(50));
        let delta = live.snapshot(None).delta_since(&newer.snapshot(None));
        assert_eq!(delta.blocks_read, 0);
        assert_eq!(delta.blocks_written, 0);
        assert_eq!(delta.batch_reads, 0);
        assert_eq!(delta.batch_writes, 0);
        assert_eq!(delta.observed_writes_total, 0);
        assert_eq!(delta.cache.hits, 0);
        assert_eq!(delta.cache.invalidated(CacheCause::Rekey), 0);
        assert_eq!(delta.op(MemOp::Read).latency.count(), 0);
        assert_eq!(delta.op(MemOp::Read).latency.percentile_ps(0.99), 0);

        // Store-side counters clamp the same way.
        let s_live = StoreMetrics::new();
        s_live.cache_hit();
        let s_newer = StoreMetrics::new();
        s_newer.cache_hit();
        s_newer.cache_hit();
        s_newer.cache_miss();
        let delta = live
            .snapshot(Some(&s_live))
            .delta_since(&newer.snapshot(Some(&s_newer)));
        assert_eq!(delta.store.page_cache_hits, 0);
        assert_eq!(delta.store.page_cache_misses, 0);
    }

    #[test]
    fn snapshot_json_has_pipeline_keys() {
        let m = MemMetrics::new(2, 4);
        m.op_duration(MemOp::Batch, Duration::from_nanos(300));
        let json = m.snapshot(None).to_json().to_pretty();
        for key in [
            "\"lock_wait\"",
            "\"lock_hold\"",
            "\"pages_done\"",
            "\"pages_total\"",
            "\"page_cache_hit_rate\"",
            "\"ciphertext_writes_total\"",
            "\"p99_ns\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let parsed = clme_types::json::parse(&json).expect("snapshot json parses");
        assert!(parsed.get("rekey").is_some());
    }

    #[test]
    fn prom_samples_render_with_store() {
        let m = MemMetrics::new(2, 4);
        let s = StoreMetrics::new();
        s.cache_hit();
        s.cache_miss();
        s.cache_evicted(false);
        m.note_write_batch(3);
        let text = clme_obs::prom::render(&m.prom_samples(Some(&s)));
        assert!(text.contains("clme_mem_blocks_written_total 3\n"), "{text}");
        assert!(text.contains("clme_store_page_cache_hits_total 1\n"));
        assert!(text.contains("clme_store_page_cache_evictions_total 1\n"));
        assert!(text.contains("clme_store_page_cache_fill_evictions_total{fill=\"read\"} 1\n"));
        assert!(text.contains("# TYPE clme_mem_lock_wait_ps histogram"));
        assert!(text.contains("clme_mem_rekey_in_progress 0\n"));
        assert!(text.contains("clme_mem_cache_invalidations_total{cause=\"rekey\"} 0\n"));
    }

    #[test]
    fn cache_counters_snapshot_and_delta() {
        let m = MemMetrics::new(2, 4);
        m.cache_hit();
        m.cache_hit();
        m.cache_partial_hit();
        m.cache_miss();
        m.cache_fill();
        m.cache_evict();
        m.cache_bypass();
        m.cache_invalidated(CacheCause::Write, 1);
        m.cache_invalidated(CacheCause::Foreign, 5);
        m.set_cache_resident(3);
        m.fanin_read(8);
        m.fanin_write(64);
        let snap = m.snapshot(None);
        assert_eq!(snap.cache.hits, 2);
        assert_eq!(snap.cache.partial_hits, 1);
        assert_eq!(snap.cache.misses, 1);
        assert_eq!(snap.cache.fills, 1);
        assert_eq!(snap.cache.evictions, 1);
        assert_eq!(snap.cache.bypasses, 1);
        assert_eq!(snap.cache.invalidated(CacheCause::Write), 1);
        assert_eq!(snap.cache.invalidated(CacheCause::Foreign), 5);
        assert_eq!(snap.cache.invalidated(CacheCause::Rekey), 0);
        assert_eq!(snap.cache.foreign_purges, 1);
        assert_eq!(snap.cache.resident_pages, 3);
        assert!((snap.cache.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(snap.fanin_read.count(), 1);
        assert_eq!(snap.fanin_write.count(), 1);
        // Scaled storage: "ps" percentiles divide back to block counts.
        assert!(snap.fanin_write.percentile_ps(0.5) as f64 / 1000.0 >= 64.0);

        m.cache_hit();
        let delta = m.snapshot(None).delta_since(&snap);
        assert_eq!(delta.cache.hits, 1);
        assert_eq!(delta.cache.misses, 0);
        assert_eq!(delta.cache.resident_pages, 3, "gauge keeps its level");

        let json = m.snapshot(None).to_json().to_pretty();
        for key in [
            "\"verify_cache\"",
            "\"partial_hits\"",
            "\"foreign_purges\"",
            "\"resident_pages\"",
            "\"fanin\"",
            "\"mean_blocks\"",
            "\"page_cache_read_fill_evictions\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
