//! The encryption layer's flight recorder: what the black box records.
//!
//! [`clme_obs::FlightRing`] stores opaque `(seq, kind, a, b)` events;
//! this module gives them meaning. [`FlightKind`] is the stable event
//! vocabulary (codes go into `.clmedump` bundles, so variants may be
//! added but never renumbered), and [`FlightRecorder`] is the typed
//! recording facade the layer calls from its hot paths.
//!
//! Like [`MemMetrics`](crate::MemMetrics), the recorder follows the
//! telemetry twin pattern: the real implementation records through the
//! lock-free ring, and under the `telemetry-off` feature a zero-sized
//! twin compiles every call to nothing. Recording never reads a clock —
//! event order comes from the ring's global sequence stamp — so the
//! captured timeline is deterministic for a deterministic workload.

#[cfg(not(feature = "telemetry-off"))]
use clme_obs::flight::FlightRing;
use clme_obs::flight::FlightSnapshot;

use crate::error::TamperClass;
use crate::metrics::CacheCause;

/// Default number of events the layer's flight ring retains.
pub const FLIGHT_CAPACITY: usize = 4096;

/// A shard-lock wait at or above this many nanoseconds becomes a
/// [`FlightKind::LockSlow`] event. Normal uncontended acquisitions are
/// hundreds of nanoseconds; 100µs means a page lock was genuinely
/// queued behind a page roll or a rekey sweep.
pub const SLOW_LOCK_NS: u64 = 100_000;

/// A page's ciphertext-write observation count becomes a
/// [`FlightKind::WriteBurst`] event each time it crosses a power of two
/// at or above this floor (64, 128, 256, ...). Count-based, not
/// clock-based, so burst events are deterministic — the CipherGuard
/// observation that attacks manifest as per-page write bursts.
pub const BURST_FLOOR: u64 = 64;

/// Every how many swept pages a rekey sweep records a
/// [`FlightKind::RekeyPage`] progress event.
pub const REKEY_FLIGHT_EVERY: u64 = 64;

/// Stable event vocabulary for the flight ring. The discriminants are
/// the on-wire codes inside `.clmedump` bundles: append-only, never
/// renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum FlightKind {
    /// A page group of a batch read verified and decrypted.
    /// `a` = page, `b` = blocks read from the page.
    ReadPage = 1,
    /// A page group of a batch write committed.
    /// `a` = page, `b` = blocks written to the page.
    WritePage = 2,
    /// An integrity check failed. `a` = probe block address,
    /// `b` = [`TamperClass::code`].
    IntegrityFail = 3,
    /// A write rolled its whole page (64 blocks re-encrypted).
    /// `a` = page.
    PageRoll = 4,
    /// A rekey sweep started with all locks held. `a` = pages to sweep.
    RekeyBegin = 5,
    /// Rekey progress: page `a` finished (recorded every
    /// [`REKEY_FLIGHT_EVERY`] pages).
    RekeyPage = 6,
    /// A rekey sweep ended. `a` = 1 on success, 0 on failure.
    RekeyEnd = 7,
    /// A sampled shard-lock wait crossed [`SLOW_LOCK_NS`].
    /// `a` = shard index, `b` = wait in nanoseconds.
    LockSlow = 8,
    /// A page's ciphertext-write count crossed a power of two at or
    /// above [`BURST_FLOOR`]. `a` = page, `b` = the count.
    WriteBurst = 9,
    /// The verified-page cache dropped entries.
    /// `a` = [`CacheCause::code`](crate::CacheCause), `b` = entries
    /// dropped.
    CachePurge = 10,
    /// A page group of a batch read was served entirely from the
    /// verified-page cache (no store traffic, no MAC work).
    /// `a` = page, `b` = blocks served.
    ReadHit = 11,
    /// A multi-tenant driver completed one composed batch for a tenant.
    /// `a` = tenant id, `b` = `(blocks << 1) | is_write`. Tags the
    /// timeline with *whose* traffic surrounded an incident so a
    /// post-mortem can name the suspect tenant.
    TenantBatch = 12,
}

/// All kinds, for render tables and exhaustiveness tests.
pub const FLIGHT_KINDS: [FlightKind; 12] = [
    FlightKind::ReadPage,
    FlightKind::WritePage,
    FlightKind::IntegrityFail,
    FlightKind::PageRoll,
    FlightKind::RekeyBegin,
    FlightKind::RekeyPage,
    FlightKind::RekeyEnd,
    FlightKind::LockSlow,
    FlightKind::WriteBurst,
    FlightKind::CachePurge,
    FlightKind::ReadHit,
    FlightKind::TenantBatch,
];

impl FlightKind {
    /// Stable dashed name for dump bundles and timelines.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::ReadPage => "read-page",
            FlightKind::WritePage => "write-page",
            FlightKind::IntegrityFail => "integrity-fail",
            FlightKind::PageRoll => "page-roll",
            FlightKind::RekeyBegin => "rekey-begin",
            FlightKind::RekeyPage => "rekey-page",
            FlightKind::RekeyEnd => "rekey-end",
            FlightKind::LockSlow => "lock-slow",
            FlightKind::WriteBurst => "write-burst",
            FlightKind::CachePurge => "cache-purge",
            FlightKind::ReadHit => "read-hit",
            FlightKind::TenantBatch => "tenant-batch",
        }
    }

    /// Inverse of the discriminant. `None` for codes from a newer
    /// vocabulary than this build.
    pub fn from_code(code: u16) -> Option<FlightKind> {
        FLIGHT_KINDS.iter().copied().find(|k| *k as u16 == code)
    }
}

// ---------------------------------------------------------------------
// Live recorder — real implementation
// ---------------------------------------------------------------------

/// Typed facade over the lock-free flight ring. One per
/// [`EncryptionLayer`](crate::EncryptionLayer); shared by reference
/// across every thread using the layer.
#[cfg(not(feature = "telemetry-off"))]
#[derive(Debug)]
pub struct FlightRecorder {
    ring: FlightRing,
}

#[cfg(not(feature = "telemetry-off"))]
impl FlightRecorder {
    /// A recorder retaining about `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: FlightRing::new(capacity),
        }
    }

    /// A page group of a batch read completed.
    #[inline]
    pub fn read_page(&self, page: u64, blocks: u64) {
        self.ring.record(FlightKind::ReadPage as u16, page, blocks);
    }

    /// A page group of a batch write committed.
    #[inline]
    pub fn write_page(&self, page: u64, blocks: u64) {
        self.ring.record(FlightKind::WritePage as u16, page, blocks);
    }

    /// An integrity check failed.
    #[inline]
    pub fn integrity_fail(&self, addr: u64, class: TamperClass) {
        self.ring
            .record(FlightKind::IntegrityFail as u16, addr, class.code() as u64);
    }

    /// A page roll happened.
    #[inline]
    pub fn page_roll(&self, page: u64) {
        self.ring.record(FlightKind::PageRoll as u16, page, 0);
    }

    /// A rekey sweep is starting.
    #[inline]
    pub fn rekey_begin(&self, pages: u64) {
        self.ring.record(FlightKind::RekeyBegin as u16, pages, 0);
    }

    /// Rekey progress; thinned to every [`REKEY_FLIGHT_EVERY`] pages so
    /// a large sweep cannot flush the whole ring.
    #[inline]
    pub fn rekey_page(&self, page: u64) {
        if page % REKEY_FLIGHT_EVERY == 0 {
            self.ring.record(FlightKind::RekeyPage as u16, page, 0);
        }
    }

    /// A rekey sweep finished.
    #[inline]
    pub fn rekey_end(&self, ok: bool) {
        self.ring.record(FlightKind::RekeyEnd as u16, ok as u64, 0);
    }

    /// A sampled lock wait was measured; records only past the
    /// [`SLOW_LOCK_NS`] threshold.
    #[inline]
    pub fn lock_wait(&self, shard: usize, wait_ns: u64) {
        if wait_ns >= SLOW_LOCK_NS {
            self.ring
                .record(FlightKind::LockSlow as u16, shard as u64, wait_ns);
        }
    }

    /// A ciphertext write raised `page`'s observation count to `count`;
    /// records a burst event on power-of-two crossings at or above
    /// [`BURST_FLOOR`].
    #[inline]
    pub fn ciphertext_write(&self, page: u64, count: u64) {
        if count >= BURST_FLOOR && count.is_power_of_two() {
            self.ring.record(FlightKind::WriteBurst as u16, page, count);
        }
    }

    /// The verified-page cache dropped `dropped` entries for `cause`.
    /// Per-page write invalidations are not recorded here (they would
    /// shadow every [`FlightKind::WritePage`]); this is for the bulk
    /// purges — rekey, tamper, foreign writes.
    #[inline]
    pub fn cache_purge(&self, cause: CacheCause, dropped: u64) {
        self.ring
            .record(FlightKind::CachePurge as u16, cause.code(), dropped);
    }

    /// A page group was served entirely from the verified-page cache.
    #[inline]
    pub fn read_hit(&self, page: u64, blocks: u64) {
        self.ring.record(FlightKind::ReadHit as u16, page, blocks);
    }

    /// A multi-tenant driver finished one composed batch for `tenant`.
    /// `write` distinguishes the op; `blocks` is the batch size.
    #[inline]
    pub fn tenant_batch(&self, tenant: u64, blocks: u64, write: bool) {
        self.ring.record(
            FlightKind::TenantBatch as u16,
            tenant,
            (blocks << 1) | write as u64,
        );
    }

    /// Merged, seq-ordered view of the retained events.
    pub fn snapshot(&self) -> FlightSnapshot {
        self.ring.snapshot()
    }

    /// Empties the ring (for tests and bench warmup isolation).
    pub fn clear(&self) {
        self.ring.clear();
    }
}

// ---------------------------------------------------------------------
// telemetry-off — zero-sized no-op twin
// ---------------------------------------------------------------------

/// No-op twin of the flight recorder: every record call compiles away
/// and snapshots come back empty.
#[cfg(feature = "telemetry-off")]
#[derive(Debug, Default)]
pub struct FlightRecorder;

#[cfg(feature = "telemetry-off")]
impl FlightRecorder {
    /// Builds the stub (capacity ignored).
    pub fn new(_capacity: usize) -> FlightRecorder {
        FlightRecorder
    }

    /// No-op.
    #[inline(always)]
    pub fn read_page(&self, _page: u64, _blocks: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn write_page(&self, _page: u64, _blocks: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn integrity_fail(&self, _addr: u64, _class: TamperClass) {}
    /// No-op.
    #[inline(always)]
    pub fn page_roll(&self, _page: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn rekey_begin(&self, _pages: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn rekey_page(&self, _page: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn rekey_end(&self, _ok: bool) {}
    /// No-op.
    #[inline(always)]
    pub fn lock_wait(&self, _shard: usize, _wait_ns: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn ciphertext_write(&self, _page: u64, _count: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn cache_purge(&self, _cause: CacheCause, _dropped: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn read_hit(&self, _page: u64, _blocks: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn tenant_batch(&self, _tenant: u64, _blocks: u64, _write: bool) {}
    /// Always empty.
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot::default()
    }
    /// No-op.
    pub fn clear(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip_and_names_are_distinct() {
        let mut names = std::collections::HashSet::new();
        for k in FLIGHT_KINDS {
            assert_eq!(FlightKind::from_code(k as u16), Some(k));
            assert!(names.insert(k.name()), "names must be unique");
        }
        assert_eq!(FlightKind::from_code(0), None);
        assert_eq!(FlightKind::from_code(999), None);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn thresholds_gate_slow_lock_and_burst_events() {
        let rec = FlightRecorder::new(256);
        rec.lock_wait(3, SLOW_LOCK_NS - 1);
        rec.ciphertext_write(9, BURST_FLOOR - 1);
        rec.ciphertext_write(9, BURST_FLOOR + 1); // not a power of two
        assert!(rec.snapshot().events.is_empty());

        rec.lock_wait(3, SLOW_LOCK_NS);
        rec.ciphertext_write(9, BURST_FLOOR);
        rec.ciphertext_write(9, BURST_FLOOR * 2);
        let events = rec.snapshot().events;
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, FlightKind::LockSlow as u16);
        assert_eq!(events[1].a, 9);
        assert_eq!(events[1].b, BURST_FLOOR);
        assert_eq!(events[2].b, BURST_FLOOR * 2);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn rekey_progress_is_thinned() {
        let rec = FlightRecorder::new(256);
        for page in 0..200 {
            rec.rekey_page(page);
        }
        let events = rec.snapshot().events;
        let pages: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(pages, vec![0, 64, 128, 192]);
    }

    #[cfg(feature = "telemetry-off")]
    #[test]
    fn stub_records_nothing() {
        let rec = FlightRecorder::new(256);
        rec.read_page(1, 2);
        rec.integrity_fail(3, TamperClass::DataMac);
        assert!(rec.snapshot().events.is_empty());
    }
}
