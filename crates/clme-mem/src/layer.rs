//! The encryption layer: counter-light applied to a backing store.
//!
//! # Stored formats
//!
//! *Data words* are [`EncodedBlock`]s — 8 ciphertext lanes, the MAC
//! lane, and the parity lane carrying the EncryptionMetadata word
//! (Section IV-C), so a read learns the block's mode and counter from
//! the block itself. *Counter words* hold a serialized
//! [`CounterBlock`] image sealed by a keyed SHA-3 MAC that also binds
//! the page's integrity-tree leaf count. *Tree-node words* hold eight
//! child counters each; a node's MAC binds its parent's counter, and
//! the topmost parent — the root — lives only inside the layer, which
//! is what defeats wholesale replay of stale metadata.
//!
//! # Verification chain
//!
//! Every read walks root → tree path → counter word → data word:
//! each hop's MAC is checked before its contents are trusted, the
//! decoded metadata word must match the verified counter exactly, and
//! the block MAC is checked last. The first mismatch aborts with an
//! [`IntegrityError`] naming the stage.
//!
//! # Locking
//!
//! Pages shard across reader-writer locks (page → shard by modulo);
//! the tree root has its own lock, always taken *after* a shard lock,
//! so disjoint pages proceed in parallel, a page roll (64 blocks
//! re-encrypted under one shard lock) is atomic, and [`rekey`] gets
//! global exclusivity by taking every shard lock in ascending order.
//!
//! [`rekey`]: EncryptionLayer::rekey

use crate::adt::{Block, MemoryAdt, BLOCK_BYTES};
use crate::cache::ClockCache;
use crate::dump::{DumpBundle, DumpContext};
use crate::error::{IntegrityError, MemError, TamperClass};
use crate::flight::{FlightRecorder, FLIGHT_CAPACITY};
use crate::geometry::{Geometry, Region, NODE_ARITY, PAGE_BLOCKS};
use crate::metrics::{CacheCause, MemMetrics, MemMetricsSnapshot, MemOp, MemStage, Stamp};
use crate::store::{StoreBackend, StoredWord, WORD_BYTES};
use crate::tenant::{TailCause, TenantServe, TenantTelemetry, VisitSegments, TAIL_CAUSES};
use clme_obs::flight::FlightSnapshot;
use clme_counters::split::CounterBlock;
use clme_crypto::keys::KeyMaterial;
use clme_crypto::mac::counterless_mac;
use clme_crypto::otp::xor64;
use clme_crypto::sha3::sha3_tag64;
use clme_ecc::codec;
use clme_ecc::encmeta::{MetaWord, COUNTERLESS_FLAG, MAX_COUNTER};
use clme_ecc::layout::EncodedBlock;
use clme_obs::span::{SpanKind, SpanTracer};
use clme_obs::TraceSink;
use clme_types::Time;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

/// Default capacity of the verified-page read cache, in pages (about
/// 2 MB of plaintext at 64 blocks x 64 bytes per page).
pub const DEFAULT_CACHE_PAGES: usize = 512;

/// Tuning knobs for an [`EncryptionLayer`].
#[derive(Clone, Copy, Debug)]
pub struct LayerOptions {
    /// Counters above this value switch the block to counterless (XTS)
    /// mode permanently — the paper's overflow fallback. The default is
    /// the metadata word's own limit; tests lower it to exercise the
    /// counterless path in a handful of writes.
    pub counter_saturation: u64,
    /// Number of page-shard locks.
    pub shards: usize,
    /// Events the flight recorder retains (its black-box window).
    pub flight_capacity: usize,
    /// Pages the verified-page read cache retains (plaintext plus the
    /// verified counter image, one CLOCK slab per shard). `0` disables
    /// the cache: every read then re-verifies the full chain. The cache
    /// also stays off when the backend keeps no
    /// [`write_generation`](StoreBackend::write_generation) — without
    /// it the layer cannot detect foreign writes underneath it.
    pub cache_pages: usize,
}

impl Default for LayerOptions {
    fn default() -> LayerOptions {
        LayerOptions {
            counter_saturation: MAX_COUNTER as u64,
            shards: 16,
            flight_capacity: FLIGHT_CAPACITY,
            cache_pages: DEFAULT_CACHE_PAGES,
        }
    }
}

/// What a [`EncryptionLayer::rekey`] sweep touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RekeyReport {
    /// Pages whose metadata was resealed.
    pub pages: u64,
    /// Data blocks re-encrypted.
    pub blocks: u64,
    /// How many of those were counterless at rekey time.
    pub counterless_blocks: u64,
}

/// One verified tree node on a page's path (leaf level first).
struct PathNode {
    level: usize,
    group: u64,
    slot: usize,
    counters: [u64; NODE_ARITY as usize],
    reserved: [u8; 8],
}

/// A page's verified metadata: its counter block plus the tree path,
/// ready for an in-place bump on writes.
struct VerifiedPage {
    cb: CounterBlock,
    path: Vec<PathNode>,
}

/// One resident page of the verified-page read cache: plaintext blocks
/// decrypted-and-verified earlier, plus the page's verified counter
/// block so a partial hit can skip the tree walk. Entries are only
/// consulted, installed, or merged while holding the page's shard
/// lock, so an entry can never be newer than the store beneath it —
/// and writes remove the entry under the shard *write* lock, so it can
/// never be staler either.
struct PageCacheEntry {
    /// The layer key epoch the verification ran under; a stale-epoch
    /// entry is a miss (rekey also purges wholesale — this is the
    /// belt-and-braces check).
    epoch: u64,
    /// The page's verified counter block.
    cb: CounterBlock,
    /// Plaintext by slot; only slots set in `present` are meaningful.
    blocks: Box<[Block]>,
    /// Bitmap of populated slots — [`PAGE_BLOCKS`] is 64, so one `u64`
    /// covers the page exactly.
    present: u64,
}

/// Host-clock marks of one read, converted to [`Time`] only when a
/// tracer is installed.
struct ReadMarks {
    issue: Instant,
    /// Pre-data OTP pad generation (counter mode only) — the overlap
    /// the paper's scheme exists to exploit.
    pad: Option<(Instant, Instant)>,
    data: (Instant, Instant),
    ecc: (Instant, Instant),
    mac: (Instant, Instant),
    /// Post-data XTS decrypt (counterless only).
    xts: Option<(Instant, Instant)>,
    ready: Instant,
}

/// The counter-light encryption layer over a backing store.
///
/// See the [module docs](self) for formats, verification, and locking.
pub struct EncryptionLayer<B: StoreBackend> {
    backend: B,
    geo: Geometry,
    keys: RwLock<Arc<KeyMaterial>>,
    shards: Box<[RwLock<()>]>,
    /// The on-chip tree root: total metadata writes, never stored.
    tree: RwLock<u64>,
    saturation: u64,
    /// The verified-page read cache; `None` when disabled by options or
    /// because the backend keeps no write generation.
    cache: Option<ClockCache<PageCacheEntry>>,
    /// Store writes this layer issued, bumped *before* the backend sees
    /// each write so `write_generation - self_writes` can only
    /// under-count foreign writes — never purge on the layer's own
    /// traffic.
    self_writes: AtomicU64,
    /// High-watermark of the foreign-write estimate already purged for;
    /// seeded with the backend's generation at attach time so adopted
    /// history does not read as an attack.
    foreign_seen: AtomicU64,
    /// Bumped on every completed rekey; cache entries are stamped with
    /// it at fill time.
    key_epoch: AtomicU64,
    tracer: Mutex<Option<SpanTracer>>,
    tracing: AtomicBool,
    epoch: Instant,
    metrics: MemMetrics,
    flight: FlightRecorder,
    /// An armed post-mortem dump: the context plus the metrics baseline
    /// taken at arm time (so the bundle carries window deltas). One-shot
    /// on integrity errors.
    dump: Mutex<Option<(DumpContext, MemMetricsSnapshot)>>,
    /// Where the most recent dump landed.
    last_dump: Mutex<Option<std::path::PathBuf>>,
    /// Per-tenant attribution, when a multi-tenant driver installed it.
    /// `None` costs one predictable branch on the hot paths.
    tenants: Option<Arc<TenantTelemetry>>,
}

const NODE_MAC_DOMAIN: &[u8] = b"clme-mem:node-mac:v1";
const CB_MAC_DOMAIN: &[u8] = b"clme-mem:cb-mac:v1";

fn node_mac(
    key: &[u8; 32],
    level: u8,
    group: u64,
    counters: &[u8; 64],
    parent: u64,
    reserved: &[u8; 8],
) -> u64 {
    sha3_tag64(
        NODE_MAC_DOMAIN,
        &[
            key,
            &[level],
            &group.to_le_bytes(),
            counters,
            &parent.to_le_bytes(),
            reserved,
        ],
    )
}

fn cb_mac(key: &[u8; 32], page: u64, image: &[u8; 64], leaf_count: u64, reserved: &[u8; 8]) -> u64 {
    sha3_tag64(
        CB_MAC_DOMAIN,
        &[
            key,
            &page.to_le_bytes(),
            image,
            &leaf_count.to_le_bytes(),
            reserved,
        ],
    )
}

fn encode_word(block: &EncodedBlock) -> StoredWord {
    let mut word = [0u8; WORD_BYTES];
    word[..64].copy_from_slice(&block.data());
    word[64..72].copy_from_slice(&block.mac.to_le_bytes());
    word[72..80].copy_from_slice(&block.parity.to_le_bytes());
    word
}

fn decode_word(word: &StoredWord) -> EncodedBlock {
    EncodedBlock::from_data(
        word[..64].try_into().expect("64-byte payload"),
        u64::from_le_bytes(word[64..72].try_into().expect("8-byte mac lane")),
        u64::from_le_bytes(word[72..80].try_into().expect("8-byte parity lane")),
    )
}

/// Encrypts one block under its counter (or counterless past
/// saturation) into the stored-word form.
fn encrypt_one(
    keys: &KeyMaterial,
    addr: u64,
    plaintext: &Block,
    counter: u64,
    saturation: u64,
) -> StoredWord {
    let block = if counter > saturation {
        let ct = keys.xts().encrypt_block64(addr, plaintext);
        let mac = counterless_mac(keys.counterless_mac_key(), addr, &ct, COUNTERLESS_FLAG);
        codec::encode(&ct, mac, MetaWord::counterless())
    } else {
        let ct = keys.otp().encrypt_block64(addr, counter, plaintext);
        let otp_trunc = keys.otp().pad_trunc64(addr, counter);
        let mac = keys
            .counter_mode_mac()
            .tag(otp_trunc, plaintext, counter as u32);
        codec::encode(&ct, mac, MetaWord::counter(counter as u32))
    };
    encode_word(&block)
}

/// Verifies and decrypts one stored data word against its verified
/// counter: metadata word first, then the block MAC.
fn decrypt_verify(
    keys: &KeyMaterial,
    addr: u64,
    word: &StoredWord,
    counter: u64,
    saturation: u64,
) -> Result<Block, IntegrityError> {
    let counterless = counter > saturation;
    let block = decode_word(word);
    let expected = if counterless {
        MetaWord::counterless()
    } else {
        MetaWord::counter(counter as u32)
    };
    if codec::decode_meta(&block) != expected {
        return Err(IntegrityError {
            addr,
            class: TamperClass::Meta,
        });
    }
    let ct = block.data();
    if counterless {
        if counterless_mac(keys.counterless_mac_key(), addr, &ct, COUNTERLESS_FLAG) != block.mac {
            return Err(IntegrityError {
                addr,
                class: TamperClass::DataMac,
            });
        }
        Ok(keys.xts().decrypt_block64(addr, &ct))
    } else {
        let pt = keys.otp().decrypt_block64(addr, counter, &ct);
        let otp_trunc = keys.otp().pad_trunc64(addr, counter);
        if keys.counter_mode_mac().tag(otp_trunc, &pt, counter as u32) != block.mac {
            return Err(IntegrityError {
                addr,
                class: TamperClass::DataMac,
            });
        }
        Ok(pt)
    }
}

impl<B: StoreBackend> EncryptionLayer<B> {
    /// Initializes a fresh layer: every block encrypted as zeros at
    /// counter 0, all metadata sealed, root 0. The backend must be
    /// sized by [`Geometry::for_blocks`]`(data_blocks).total_words()`.
    pub fn new(backend: B, data_blocks: u64, master: [u8; 32]) -> Result<EncryptionLayer<B>, MemError> {
        EncryptionLayer::with_options(backend, data_blocks, master, LayerOptions::default())
    }

    /// [`EncryptionLayer::new`] with explicit options.
    pub fn with_options(
        backend: B,
        data_blocks: u64,
        master: [u8; 32],
        options: LayerOptions,
    ) -> Result<EncryptionLayer<B>, MemError> {
        let layer = EncryptionLayer::attach_with_options(backend, data_blocks, master, 0, options)?;
        layer.initial_sweep()?;
        Ok(layer)
    }

    /// Adopts a backend that already holds encrypted state (written by
    /// a previous layer under the same master key), without touching
    /// it. `root` must be the value [`EncryptionLayer::root`] reported
    /// when the state was last written — the root is the layer's
    /// anti-replay anchor and is deliberately never stored.
    pub fn attach(
        backend: B,
        data_blocks: u64,
        master: [u8; 32],
        root: u64,
    ) -> Result<EncryptionLayer<B>, MemError> {
        EncryptionLayer::attach_with_options(backend, data_blocks, master, root, LayerOptions::default())
    }

    /// [`EncryptionLayer::attach`] with explicit options.
    pub fn attach_with_options(
        backend: B,
        data_blocks: u64,
        master: [u8; 32],
        root: u64,
        options: LayerOptions,
    ) -> Result<EncryptionLayer<B>, MemError> {
        assert!(
            options.counter_saturation <= MAX_COUNTER as u64,
            "saturation must leave the counter encodable in the metadata word"
        );
        assert!(options.shards >= 1, "at least one shard lock");
        let geo = Geometry::for_blocks(data_blocks);
        if backend.words() != geo.total_words() {
            return Err(MemError::GeometryMismatch {
                expected_words: geo.total_words(),
                actual_words: backend.words(),
            });
        }
        let shards = (0..options.shards)
            .map(|_| RwLock::new(()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let metrics = MemMetrics::new(options.shards, geo.pages());
        let cache = (options.cache_pages > 0 && backend.write_generation().is_some())
            .then(|| ClockCache::new(options.shards, options.cache_pages));
        let foreign_base = backend.write_generation().unwrap_or(0);
        Ok(EncryptionLayer {
            backend,
            geo,
            keys: RwLock::new(Arc::new(KeyMaterial::from_master(master))),
            shards,
            tree: RwLock::new(root),
            saturation: options.counter_saturation,
            cache,
            self_writes: AtomicU64::new(0),
            foreign_seen: AtomicU64::new(foreign_base),
            key_epoch: AtomicU64::new(0),
            tracer: Mutex::new(None),
            tracing: AtomicBool::new(false),
            epoch: Instant::now(),
            metrics,
            flight: FlightRecorder::new(options.flight_capacity),
            dump: Mutex::new(None),
            last_dump: Mutex::new(None),
            tenants: None,
        })
    }

    /// The layout this layer manages.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// The current on-chip tree root. Save it alongside a persistent
    /// backend to [`EncryptionLayer::attach`] later; a wrong root makes
    /// every read fail tree verification.
    pub fn root(&self) -> u64 {
        *self.tree.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The raw backing store — the adversary's view of physical
    /// memory. Tamper tests (and the CLI demo) flip bytes here, below
    /// the encryption layer; the layer must catch every such flip.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Dismantles the layer, returning the backing store.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The verified write counter of a block (counts past the
    /// saturation point mean the block is counterless).
    pub fn counter_of(&self, addr: u64) -> Result<u64, MemError> {
        self.check_addr(addr)?;
        let page = self.geo.page_of(addr);
        let _shard = self.shard(page).read().unwrap_or_else(PoisonError::into_inner);
        let keys = self.keys();
        let root = self.tree.read().unwrap_or_else(PoisonError::into_inner);
        let v = self.verify_page(&keys, page, *root, addr)?;
        Ok(v.cb.counter(self.geo.slot_of(addr)))
    }

    /// Whether a block has switched to counterless (XTS) mode.
    pub fn is_counterless(&self, addr: u64) -> Result<bool, MemError> {
        Ok(self.counter_of(addr)? > self.saturation)
    }

    /// The layer's always-on telemetry (a no-op stub when the crate is
    /// built with the `telemetry-off` feature).
    pub fn metrics(&self) -> &MemMetrics {
        &self.metrics
    }

    /// A snapshot of every layer metric, with the backend's store
    /// counters folded in.
    pub fn metrics_snapshot(&self) -> MemMetricsSnapshot {
        if let Some(cache) = &self.cache {
            self.metrics.set_cache_resident(cache.len() as u64);
        }
        self.metrics.snapshot(self.backend.store_metrics())
    }

    /// The layer's (and backend's) metrics as Prometheus exposition
    /// text. Empty under `telemetry-off`.
    pub fn metrics_prom(&self) -> String {
        clme_obs::prom::render(&self.metrics.prom_samples(self.backend.store_metrics()))
    }

    /// The layer's flight recorder (a no-op stub under `telemetry-off`).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Installs per-tenant attribution. Takes `&mut self` so it can only
    /// happen before the layer is shared across threads; hot paths then
    /// attribute cache results, ciphertext observations, and sampled
    /// stage blame to the tenant owning each page.
    pub fn install_tenants(&mut self, tenants: Arc<TenantTelemetry>) {
        self.tenants = Some(tenants);
    }

    /// The installed per-tenant telemetry, if any.
    pub fn tenants(&self) -> Option<&Arc<TenantTelemetry>> {
        self.tenants.as_ref()
    }

    /// Merged, ordered view of the flight ring's retained events.
    pub fn flight_snapshot(&self) -> FlightSnapshot {
        self.flight.snapshot()
    }

    /// Arms post-mortem capture: the next [`IntegrityError`] raised by a
    /// batch op or rekey sweep writes a `.clmedump` bundle to
    /// `ctx.path` (flight ring + metrics delta since this call +
    /// geometry/config/seed), then disarms. [`dump_now`] triggers the
    /// same bundle explicitly without disarming.
    ///
    /// [`dump_now`]: EncryptionLayer::dump_now
    pub fn arm_dump(&self, ctx: DumpContext) {
        let base = self.metrics_snapshot();
        *self.dump.lock().unwrap_or_else(PoisonError::into_inner) = Some((ctx, base));
    }

    /// Disarms post-mortem capture, returning the pending context.
    pub fn disarm_dump(&self) -> Option<DumpContext> {
        self.dump
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .map(|(ctx, _)| ctx)
    }

    /// Writes the armed dump bundle now (trigger `"exit"`), without
    /// disarming. `Ok(None)` when no dump is armed.
    pub fn dump_now(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        self.write_dump("exit", None, false)
    }

    /// Where the most recent dump bundle was written, if any.
    pub fn last_dump(&self) -> Option<std::path::PathBuf> {
        self.last_dump
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The integrity-error path: record the failure in the flight ring,
    /// bump the metric, drop every cached page (the store is suspect —
    /// nothing verified before the failure may be served again), and
    /// flush the armed dump (one-shot).
    fn note_integrity_error(&self, e: &IntegrityError) {
        self.metrics.integrity_error();
        self.flight.integrity_fail(e.addr, e.class);
        self.purge_cache(CacheCause::Tamper);
        let _ = self.write_dump("integrity-error", Some(*e), true);
    }

    /// Empties the verified-page cache, attributing the drop to `cause`
    /// in both the counters and the flight ring.
    fn purge_cache(&self, cause: CacheCause) {
        if let Some(cache) = &self.cache {
            let dropped = cache.clear();
            self.metrics.cache_invalidated(cause, dropped);
            self.flight.cache_purge(cause, dropped);
        }
    }

    /// Every store write the layer itself issues goes through here: the
    /// self-write count bumps *before* the backend can observe the
    /// write, so a concurrent [`foreign_writes_check`] computing
    /// `write_generation - self_writes` never over-counts — the layer's
    /// own traffic can never trigger a spurious purge.
    ///
    /// [`foreign_writes_check`]: EncryptionLayer::foreign_writes_check
    fn store_write(&self, index: u64, word: &StoredWord) -> Result<(), MemError> {
        self.self_writes.fetch_add(1, Ordering::SeqCst);
        self.backend.write_word(index, word)
    }

    /// Purges the cache when the backend has seen writes this layer did
    /// not issue — a tamper harness or bus adversary mutating words
    /// beneath the layer. Cached plaintext must never mask a
    /// store-level flip, so any growth of the foreign estimate drops
    /// everything and re-verifies from the store. Reading the
    /// generation *before* the self-write count keeps the estimate a
    /// lower bound under concurrency; once traffic quiesces it is
    /// exact.
    fn foreign_writes_check(&self, cache: &ClockCache<PageCacheEntry>) {
        let Some(generation) = self.backend.write_generation() else {
            return;
        };
        let own = self.self_writes.load(Ordering::SeqCst);
        let est = generation.saturating_sub(own);
        // fetch_max returns the prior watermark: only the thread that
        // actually advances it purges, so one foreign burst is one
        // purge, not one per racing reader.
        if est > self.foreign_seen.load(Ordering::SeqCst)
            && self.foreign_seen.fetch_max(est, Ordering::SeqCst) < est
        {
            let dropped = cache.clear();
            self.metrics.cache_invalidated(CacheCause::Foreign, dropped);
            self.flight.cache_purge(CacheCause::Foreign, dropped);
        }
    }

    fn write_dump(
        &self,
        trigger: &str,
        error: Option<IntegrityError>,
        consume: bool,
    ) -> std::io::Result<Option<std::path::PathBuf>> {
        let armed = {
            let mut guard = self.dump.lock().unwrap_or_else(PoisonError::into_inner);
            if consume {
                guard.take()
            } else {
                guard.clone()
            }
        };
        let Some((ctx, base)) = armed else {
            return Ok(None);
        };
        let delta = self.metrics_snapshot().delta_since(&base);
        let bundle = DumpBundle::assemble(
            trigger,
            self.backend.kind(),
            &self.geo,
            self.shards.len() as u64,
            self.saturation,
            &ctx,
            &delta,
            self.flight.snapshot(),
            error,
        );
        crate::dump::write_atomic(&ctx.path, &bundle.to_json().to_pretty())?;
        *self.last_dump.lock().unwrap_or_else(PoisonError::into_inner) = Some(ctx.path.clone());
        Ok(Some(ctx.path))
    }

    /// Installs a span tracer; subsequent reads emit request spans.
    pub fn install_tracer(&self, tracer: SpanTracer) {
        *self.tracer.lock().unwrap_or_else(PoisonError::into_inner) = Some(tracer);
        self.tracing.store(true, Ordering::SeqCst);
    }

    /// Removes and returns the tracer, stopping span emission.
    pub fn take_tracer(&self) -> Option<SpanTracer> {
        self.tracing.store(false, Ordering::SeqCst);
        self.tracer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Re-encrypts every block and reseals all metadata under a new
    /// master key, online: the sweep takes every shard lock, so it
    /// serializes against all traffic but needs no restart. Counters
    /// and the root are preserved (pads differ by key, so keeping the
    /// counters reuses no nonce). Afterwards nothing in the store
    /// verifies — let alone decrypts — under the old key.
    pub fn rekey(&self, new_master: [u8; 32]) -> Result<RekeyReport, MemError> {
        let result = self.rekey_inner(new_master);
        // Whatever the outcome, nothing verified before the sweep may
        // be served again: success burned the old key (old-key-era
        // plaintext must be unreachable), failure means the store is
        // suspect. Stale-epoch stamping backstops the success path.
        self.purge_cache(CacheCause::Rekey);
        if let Err(e) = &result {
            if let Some(ie) = e.integrity() {
                self.note_integrity_error(ie);
            }
        }
        self.metrics.rekey_end(result.is_ok());
        self.flight.rekey_end(result.is_ok());
        result
    }

    fn rekey_inner(&self, new_master: [u8; 32]) -> Result<RekeyReport, MemError> {
        let mut _guards = Vec::with_capacity(self.shards.len());
        for (i, s) in self.shards.iter().enumerate() {
            let w = Stamp::now();
            _guards.push(s.write().unwrap_or_else(PoisonError::into_inner));
            let a = Stamp::now();
            self.metrics.lock_wait(i, w, a);
            self.flight.lock_wait(i, a.since_ns(w));
        }
        let hold_from = Stamp::now();
        let root = self.tree.write().unwrap_or_else(PoisonError::into_inner);
        self.metrics.rekey_begin(self.geo.pages());
        self.flight.rekey_begin(self.geo.pages());
        let old = self.keys();
        let new = KeyMaterial::from_master(new_master);
        let old_mkey = old.counterless_mac_key();
        let new_mkey = new.counterless_mac_key();

        // Reseal the tree top-down, verifying under the old key as we
        // descend; each level's counters are the next level's parents.
        let mut parents: Vec<u64> = vec![*root];
        let mut leaf_counts: Vec<u64> = Vec::new();
        for level in (0..self.geo.levels()).rev() {
            let mut flat = Vec::with_capacity((self.geo.node_count(level) * NODE_ARITY) as usize);
            for group in 0..self.geo.node_count(level) {
                let index = self.geo.node_word(level, group);
                let mut word = self.backend.read_word(index)?;
                let counters: [u8; 64] = word[..64].try_into().expect("64-byte counters");
                let reserved: [u8; 8] = word[72..80].try_into().expect("8-byte reserved");
                let stored = u64::from_le_bytes(word[64..72].try_into().expect("8-byte mac"));
                let parent = parents[group as usize];
                let level8 = level as u8;
                if node_mac(old_mkey, level8, group, &counters, parent, &reserved) != stored {
                    return Err(IntegrityError {
                        addr: self.geo.probe_addr(Region::TreeNode { level: level8, group }),
                        class: TamperClass::TreeNode { level: level8 },
                    }
                    .into());
                }
                let mac = node_mac(new_mkey, level8, group, &counters, parent, &reserved);
                word[64..72].copy_from_slice(&mac.to_le_bytes());
                self.store_write(index, &word)?;
                for j in 0..NODE_ARITY as usize {
                    flat.push(u64::from_le_bytes(
                        word[8 * j..8 * j + 8].try_into().expect("8-byte counter"),
                    ));
                }
            }
            if level == 0 {
                leaf_counts = flat;
            } else {
                parents = flat;
            }
        }

        let mut blocks = 0u64;
        let mut counterless_blocks = 0u64;
        for page in 0..self.geo.pages() {
            let index = self.geo.counter_word(page);
            let mut word = self.backend.read_word(index)?;
            let image: [u8; 64] = word[..64].try_into().expect("64-byte image");
            let reserved: [u8; 8] = word[72..80].try_into().expect("8-byte reserved");
            let stored = u64::from_le_bytes(word[64..72].try_into().expect("8-byte mac"));
            let leaf = leaf_counts[page as usize];
            if cb_mac(old_mkey, page, &image, leaf, &reserved) != stored {
                return Err(IntegrityError {
                    addr: page * PAGE_BLOCKS,
                    class: TamperClass::CounterBlock,
                }
                .into());
            }
            let mac = cb_mac(new_mkey, page, &image, leaf, &reserved);
            word[64..72].copy_from_slice(&mac.to_le_bytes());
            self.store_write(index, &word)?;

            let cb = CounterBlock::from_bytes(&image);
            for addr in self.geo.page_addr_range(page) {
                let counter = cb.counter(self.geo.slot_of(addr));
                let data = self.backend.read_word(self.geo.data_word(addr))?;
                let pt = decrypt_verify(&old, addr, &data, counter, self.saturation)?;
                self.store_write(
                    self.geo.data_word(addr),
                    &encrypt_one(&new, addr, &pt, counter, self.saturation),
                )?;
                let observed = self.metrics.observe_ciphertext_write(page);
                self.flight.ciphertext_write(page, observed);
                blocks += 1;
                if counter > self.saturation {
                    counterless_blocks += 1;
                }
            }
            self.metrics.rekey_page_done();
            self.flight.rekey_page(page);
        }
        drop(root);
        *self.keys.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(new);
        // Entries filled before this line verified under the old key;
        // the epoch bump makes any survivor of the wholesale purge (in
        // `rekey`) read as a miss.
        self.key_epoch.fetch_add(1, Ordering::SeqCst);
        for i in 0..self.shards.len() {
            self.metrics.lock_hold(i, hold_from);
        }
        // Every per-tenant key-exposure gauge resets: whatever an
        // observer collected was written under the now-retired key.
        if let Some(tenants) = &self.tenants {
            tenants.on_rekey();
        }
        Ok(RekeyReport {
            pages: self.geo.pages(),
            blocks,
            counterless_blocks,
        })
    }

    fn keys(&self) -> Arc<KeyMaterial> {
        self.keys
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn shard_index(&self, page: u64) -> usize {
        (page % self.shards.len() as u64) as usize
    }

    fn shard(&self, page: u64) -> &RwLock<()> {
        &self.shards[self.shard_index(page)]
    }

    fn check_addr(&self, addr: u64) -> Result<(), MemError> {
        if addr < self.geo.data_blocks() {
            Ok(())
        } else {
            Err(MemError::OutOfBounds {
                index: addr,
                limit: self.geo.data_blocks(),
            })
        }
    }

    fn t(&self, at: Instant) -> Time {
        let ns = at.saturating_duration_since(self.epoch).as_nanos() as u64;
        Time::from_picos(ns.saturating_mul(1000))
    }

    /// Writes the boot-time state: zeroed counters, sealed metadata,
    /// every block encrypted as zeros at counter 0.
    fn initial_sweep(&self) -> Result<(), MemError> {
        let keys = self.keys();
        let mkey = keys.counterless_mac_key();
        let zero_counters = [0u8; 64];
        for level in 0..self.geo.levels() {
            for group in 0..self.geo.node_count(level) {
                let mut word = [0u8; WORD_BYTES];
                let mac = node_mac(mkey, level as u8, group, &zero_counters, 0, &[0u8; 8]);
                word[64..72].copy_from_slice(&mac.to_le_bytes());
                self.store_write(self.geo.node_word(level, group), &word)?;
            }
        }
        let image = CounterBlock::new().to_bytes();
        for page in 0..self.geo.pages() {
            let mut word = [0u8; WORD_BYTES];
            word[..64].copy_from_slice(&image);
            let mac = cb_mac(mkey, page, &image, 0, &[0u8; 8]);
            word[64..72].copy_from_slice(&mac.to_le_bytes());
            self.store_write(self.geo.counter_word(page), &word)?;
        }
        let zeros = [0u8; BLOCK_BYTES];
        for addr in 0..self.geo.data_blocks() {
            self.store_write(
                self.geo.data_word(addr),
                &encrypt_one(&keys, addr, &zeros, 0, self.saturation),
            )?;
        }
        Ok(())
    }

    /// Verifies a page's tree path (top-down from the root) and its
    /// counter word, returning the trusted metadata.
    fn verify_page(
        &self,
        keys: &KeyMaterial,
        page: u64,
        root: u64,
        err_addr: u64,
    ) -> Result<VerifiedPage, MemError> {
        let mkey = keys.counterless_mac_key();
        let spec = self.geo.path(page);
        let mut nodes: Vec<PathNode> = Vec::with_capacity(spec.len());
        let mut parent = root;
        for &(level, group, slot) in spec.iter().rev() {
            let word = self.backend.read_word(self.geo.node_word(level, group))?;
            let counters_bytes: [u8; 64] = word[..64].try_into().expect("64-byte counters");
            let reserved: [u8; 8] = word[72..80].try_into().expect("8-byte reserved");
            let stored = u64::from_le_bytes(word[64..72].try_into().expect("8-byte mac"));
            if node_mac(mkey, level as u8, group, &counters_bytes, parent, &reserved) != stored {
                return Err(IntegrityError {
                    addr: err_addr,
                    class: TamperClass::TreeNode { level: level as u8 },
                }
                .into());
            }
            let mut counters = [0u64; NODE_ARITY as usize];
            for (j, counter) in counters.iter_mut().enumerate() {
                *counter =
                    u64::from_le_bytes(word[8 * j..8 * j + 8].try_into().expect("8-byte counter"));
            }
            parent = counters[slot];
            nodes.push(PathNode {
                level,
                group,
                slot,
                counters,
                reserved,
            });
        }
        nodes.reverse();
        let leaf_count = parent;
        let word = self.backend.read_word(self.geo.counter_word(page))?;
        let image: [u8; 64] = word[..64].try_into().expect("64-byte image");
        let reserved: [u8; 8] = word[72..80].try_into().expect("8-byte reserved");
        let stored = u64::from_le_bytes(word[64..72].try_into().expect("8-byte mac"));
        if cb_mac(mkey, page, &image, leaf_count, &reserved) != stored {
            return Err(IntegrityError {
                addr: err_addr,
                class: TamperClass::CounterBlock,
            }
            .into());
        }
        Ok(VerifiedPage {
            cb: CounterBlock::from_bytes(&image),
            path: nodes,
        })
    }

    /// Bumps the page's leaf count up the whole path (and the root),
    /// then rewrites the path's node words and the counter word with
    /// fresh MACs. Caller holds the shard write lock and `root`.
    fn commit_metadata(
        &self,
        keys: &KeyMaterial,
        page: u64,
        v: &mut VerifiedPage,
        root: &mut u64,
    ) -> Result<(), MemError> {
        let mkey = keys.counterless_mac_key();
        *root += 1;
        for node in v.path.iter_mut() {
            node.counters[node.slot] += 1;
        }
        let levels = v.path.len();
        for i in 0..levels {
            // The parent of the path node at level i is the path
            // counter at level i+1 (just bumped), or the root on top.
            let parent = if i + 1 < levels {
                let up = &v.path[i + 1];
                up.counters[up.slot]
            } else {
                *root
            };
            let node = &v.path[i];
            let mut word = [0u8; WORD_BYTES];
            for (j, counter) in node.counters.iter().enumerate() {
                word[8 * j..8 * j + 8].copy_from_slice(&counter.to_le_bytes());
            }
            word[72..80].copy_from_slice(&node.reserved);
            let counters_bytes: [u8; 64] = word[..64].try_into().expect("64-byte counters");
            let mac = node_mac(mkey, node.level as u8, node.group, &counters_bytes, parent, &node.reserved);
            word[64..72].copy_from_slice(&mac.to_le_bytes());
            self.store_write(self.geo.node_word(node.level, node.group), &word)?;
        }
        let leaf = v.path[0].counters[v.path[0].slot];
        let image = v.cb.to_bytes();
        let mut word = [0u8; WORD_BYTES];
        word[..64].copy_from_slice(&image);
        let mac = cb_mac(mkey, page, &image, leaf, &[0u8; 8]);
        word[64..72].copy_from_slice(&mac.to_le_bytes());
        self.store_write(self.geo.counter_word(page), &word)?;
        Ok(())
    }

    /// Reads, verifies, and decrypts one block whose counter is
    /// already verified, collecting host-clock span marks.
    ///
    /// `batch_pad` is the block's pad when the caller generated it in a
    /// page-batched [`pad_batch64`](clme_crypto::otp::OtpCipher::pad_batch64)
    /// pass, together with the whole batch's generation interval (which
    /// the marks then carry as this block's pad span).
    fn read_one(
        &self,
        keys: &KeyMaterial,
        addr: u64,
        counter: u64,
        batch_pad: Option<(&[u8; 64], (Instant, Instant))>,
    ) -> Result<(Block, ReadMarks), MemError> {
        let counterless = counter > self.saturation;
        let issue = Instant::now();
        // Counter mode generates the pad *before* touching the store —
        // the overlap the scheme is built around.
        let mut pad_bytes = None;
        let pad = if counterless {
            None
        } else if let Some((bytes, interval)) = batch_pad {
            pad_bytes = Some(*bytes);
            Some(interval)
        } else {
            let p0 = Instant::now();
            pad_bytes = Some(keys.otp().pad_block64(addr, counter));
            Some((p0, Instant::now()))
        };
        let d0 = Instant::now();
        let word = self.backend.read_word(self.geo.data_word(addr))?;
        let d1 = Instant::now();
        let e0 = Instant::now();
        let block = decode_word(&word);
        let expected = if counterless {
            MetaWord::counterless()
        } else {
            MetaWord::counter(counter as u32)
        };
        if codec::decode_meta(&block) != expected {
            return Err(IntegrityError {
                addr,
                class: TamperClass::Meta,
            }
            .into());
        }
        let e1 = Instant::now();
        let ct = block.data();
        let (pt, mac, xts) = if counterless {
            let m0 = Instant::now();
            if counterless_mac(keys.counterless_mac_key(), addr, &ct, COUNTERLESS_FLAG) != block.mac
            {
                return Err(IntegrityError {
                    addr,
                    class: TamperClass::DataMac,
                }
                .into());
            }
            let m1 = Instant::now();
            let x0 = Instant::now();
            let pt = keys.xts().decrypt_block64(addr, &ct);
            (pt, (m0, m1), Some((x0, Instant::now())))
        } else {
            let pad_bytes = pad_bytes.as_ref().expect("pad precomputed in counter mode");
            let pt = xor64(&ct, pad_bytes);
            let m0 = Instant::now();
            let otp_trunc = u64::from_le_bytes(pad_bytes[..8].try_into().expect("64-byte pad"));
            if keys.counter_mode_mac().tag(otp_trunc, &pt, counter as u32) != block.mac {
                return Err(IntegrityError {
                    addr,
                    class: TamperClass::DataMac,
                }
                .into());
            }
            (pt, (m0, Instant::now()), None)
        };
        let ready = Instant::now();
        Ok((
            pt,
            ReadMarks {
                issue,
                pad,
                data: (d0, d1),
                ecc: (e0, e1),
                mac,
                xts,
                ready,
            },
        ))
    }

    /// Replays a page group's reads into the installed tracer. The
    /// page's metadata verify is the counter fetch: the first request
    /// carries its real interval, later ones a point span (they hit
    /// the just-verified page, like a counter-cache hit).
    fn emit_read_spans(&self, meta0: Instant, meta1: Instant, requests: &[(u64, ReadMarks)]) {
        let mut guard = self.tracer.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tracer) = guard.as_mut() else {
            return;
        };
        for (i, (addr, m)) in requests.iter().enumerate() {
            let (issue, c0, c1) = if i == 0 {
                (meta0, meta0, meta1)
            } else {
                (m.issue, m.issue, m.issue)
            };
            tracer.span_request_begin(self.t(issue), *addr);
            tracer.span_child(SpanKind::CounterFetch, 0, self.t(c0), self.t(c1));
            if let Some((p0, p1)) = m.pad {
                tracer.span_child(SpanKind::PadAes, 0, self.t(p0), self.t(p1));
            }
            tracer.span_child(SpanKind::DataDram, 0, self.t(m.data.0), self.t(m.data.1));
            tracer.span_child(SpanKind::EccDecode, 0, self.t(m.ecc.0), self.t(m.ecc.1));
            tracer.span_child(SpanKind::MacFetch, 0, self.t(m.mac.0), self.t(m.mac.1));
            if let Some((x0, x1)) = m.xts {
                tracer.span_child(SpanKind::PadAes, 0, self.t(x0), self.t(x1));
            }
            tracer.span_request_end(self.t(m.data.1), self.t(m.ready));
        }
    }

    /// Replays cache-hit reads into the tracer: a begin at lookup time,
    /// a *point* counter fetch (the verified image was already
    /// resident), the copy interval as the DRAM child, and **no MAC
    /// child** — a hit re-verifies nothing, which is exactly what span
    /// blame should show (DRAM-bound, not MAC-bound).
    fn emit_hit_spans(&self, t0: Instant, t1: Instant, addrs: &[u64]) {
        let mut guard = self.tracer.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tracer) = guard.as_mut() else {
            return;
        };
        for &addr in addrs {
            tracer.span_request_begin(self.t(t0), addr);
            tracer.span_child(SpanKind::CounterFetch, 0, self.t(t0), self.t(t0));
            tracer.span_child(SpanKind::DataDram, 0, self.t(t0), self.t(t1));
            tracer.span_request_end(self.t(t1), self.t(t1));
        }
    }
}

impl<B: StoreBackend> MemoryAdt for EncryptionLayer<B> {
    fn blocks(&self) -> u64 {
        self.geo.data_blocks()
    }

    fn batch_read(&self, addrs: &[u64]) -> Result<Vec<Block>, MemError> {
        let call0 = Stamp::now();
        let result = self.batch_read_inner(addrs);
        match &result {
            Ok(_) => {
                self.metrics.note_read_batch(addrs.len() as u64);
                self.metrics.op_between(MemOp::Batch, call0, Stamp::now());
            }
            Err(e) => {
                if let Some(ie) = e.integrity() {
                    self.note_integrity_error(ie);
                }
            }
        }
        result
    }

    fn batch_write(&self, writes: &[(u64, Block)]) -> Result<(), MemError> {
        let call0 = Stamp::now();
        let result = self.batch_write_inner(writes);
        match &result {
            Ok(_) => {
                self.metrics.note_write_batch(writes.len() as u64);
                self.metrics.op_between(MemOp::Batch, call0, Stamp::now());
            }
            Err(e) => {
                if let Some(ie) = e.integrity() {
                    self.note_integrity_error(ie);
                }
            }
        }
        result
    }
}

impl<B: StoreBackend> EncryptionLayer<B> {
    fn batch_read_inner(&self, addrs: &[u64]) -> Result<Vec<Block>, MemError> {
        for &addr in addrs {
            self.check_addr(addr)?;
        }
        let mut out = vec![[0u8; BLOCK_BYTES]; addrs.len()];
        let mut by_page: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, &addr) in addrs.iter().enumerate() {
            by_page.entry(self.geo.page_of(addr)).or_default().push(i);
        }
        let tracing = self.tracing.load(Ordering::Relaxed);
        for (page, idxs) in by_page {
            let shard_idx = self.shard_index(page);
            // One sampling decision per page visit, shared by every
            // distribution probe on this path: the lock wait/hold pair
            // (two extra clock reads), the fan-in histogram, and the
            // flight-recorder ring writes inside the page group. With
            // the verified-page cache a hot read is a few hundred
            // nanoseconds, so even clockless probes are budget-visible
            // unless thinned; the read path uses the rarer 1-in-64
            // tick while hit/miss *counters* and read op latencies
            // stay exhaustive.
            let sampled = self.metrics.sample_read();
            let lock_probe = sampled.then(Stamp::now);
            let _shard = self.shard(page).read().unwrap_or_else(PoisonError::into_inner);
            let acquired = lock_probe.map(|w| {
                let a = Stamp::now();
                self.metrics.lock_wait(shard_idx, w, a);
                self.flight.lock_wait(shard_idx, a.since_ns(w));
                a
            });
            let keys = self.keys();
            if sampled {
                self.metrics.fanin_read(idxs.len() as u64);
            }
            // Sampled visits hand their measured segments to the tenant
            // blame tables; the marks are the ones span tracing and the
            // stage histograms already read, so attribution adds
            // arithmetic, not clock reads.
            let mut segs = [0u64; TAIL_CAUSES];
            if let (Some(w), Some(a)) = (lock_probe, acquired) {
                segs[TailCause::Lock as usize] = a.since_ns(w);
            }
            self.read_page_group(&keys, page, addrs, &idxs, &mut out, tracing, sampled, &mut segs)?;
            if sampled {
                if let (Some(tenants), Some(w)) = (&self.tenants, lock_probe) {
                    tenants.visit_sample(page, Stamp::now().since_ns(w), &segs);
                }
            }
            if let Some(acquired) = acquired {
                self.metrics.lock_hold(shard_idx, acquired);
            }
        }
        Ok(out)
    }

    /// Serves one page group of a batch read: consult the verified-page
    /// cache first, then verify-and-fetch whatever is missing with the
    /// page's pads generated in one batched pass. Caller holds the
    /// page's shard read lock. On sampled visits `segs` accumulates the
    /// measured nanosecond segments for tenant blame attribution.
    #[allow(clippy::too_many_arguments)]
    fn read_page_group(
        &self,
        keys: &KeyMaterial,
        page: u64,
        addrs: &[u64],
        idxs: &[usize],
        out: &mut [Block],
        tracing: bool,
        sampled: bool,
        segs: &mut VisitSegments,
    ) -> Result<(), MemError> {
        let issue = Instant::now();
        let epoch = self.key_epoch.load(Ordering::SeqCst);
        let mut cached: Option<(CounterBlock, Vec<Option<Block>>)> = None;
        if let Some(cache) = &self.cache {
            self.foreign_writes_check(cache);
            let found = cache.with(page, |e| {
                if e.epoch != epoch {
                    return None;
                }
                let mut got = Vec::with_capacity(idxs.len());
                for &i in idxs {
                    let slot = self.geo.slot_of(addrs[i]);
                    got.push((e.present >> slot & 1 == 1).then(|| e.blocks[slot]));
                }
                Some((e.cb.clone(), got))
            });
            match found {
                Some(Some(hit)) => cached = Some(hit),
                // Stale key epoch: the rekey purge already ran, so this
                // is defense in depth; drop it and fall through to a
                // miss.
                Some(None) => {
                    cache.remove(page);
                }
                None => {}
            }
        } else {
            self.metrics.cache_bypass();
        }

        let hits = cached
            .as_ref()
            .map_or(0, |(_, got)| got.iter().flatten().count());

        // Full hit: a pure copy — no store traffic, no tree walk, no
        // MACs. Read op latency stays exhaustive on every path.
        if hits == idxs.len() {
            if let Some((_, got)) = &cached {
                let done = Instant::now();
                let elapsed = done.saturating_duration_since(issue);
                for (&i, block) in idxs.iter().zip(got.iter()) {
                    out[i] = (*block).expect("full hit");
                }
                // All blocks shared the one measured interval: a single
                // weighted record keeps the count exhaustive (one
                // latency sample per block) at one histogram pass.
                self.metrics
                    .op_duration_n(MemOp::Read, elapsed, idxs.len() as u64);
                self.metrics.cache_hit();
                if let Some(tenants) = &self.tenants {
                    tenants.page_served(page, TenantServe::Hit);
                }
                if sampled {
                    self.flight.read_hit(page, idxs.len() as u64);
                }
                if tracing {
                    let hit_addrs: Vec<u64> = idxs.iter().map(|&i| addrs[i]).collect();
                    self.emit_hit_spans(issue, done, &hit_addrs);
                }
                return Ok(());
            }
        }

        // Partial hit: the cached counter block is already verified, so
        // the tree walk is skipped and only the absent blocks pay for
        // store I/O and a MAC. Miss: the full verification chain.
        let was_partial = cached.is_some();
        let mut meta: Option<(Instant, Instant)> = None;
        let (cb, got) = match cached {
            Some((cb, got)) => {
                self.metrics.cache_partial_hit();
                if let Some(tenants) = &self.tenants {
                    tenants.page_served(page, TenantServe::Partial);
                }
                (cb, got)
            }
            None => {
                if self.cache.is_some() {
                    self.metrics.cache_miss();
                }
                // Tenant tables fold bypasses in with misses: either
                // way the full verification chain ran for this tenant.
                if let Some(tenants) = &self.tenants {
                    tenants.page_served(page, TenantServe::Miss);
                }
                let meta0 = Instant::now();
                let v = {
                    let root = self.tree.read().unwrap_or_else(PoisonError::into_inner);
                    self.verify_page(keys, page, *root, addrs[idxs[0]])?
                };
                let meta1 = Instant::now();
                // The page verify is the read path's tree walk; its
                // marks already exist for span tracing, so telemetry
                // reuses them instead of reading the clock again.
                self.metrics.stage_duration(
                    MemOp::Read,
                    MemStage::TreeWalk,
                    meta1.saturating_duration_since(meta0),
                );
                if sampled {
                    segs[TailCause::TreeWalk as usize] +=
                        meta1.saturating_duration_since(meta0).as_nanos() as u64;
                }
                meta = Some((meta0, meta1));
                (v.cb, vec![None; idxs.len()])
            }
        };

        // Serve the cached blocks before paying for any store I/O.
        let served = Instant::now();
        let hit_elapsed = served.saturating_duration_since(issue);
        let mut hit_addrs: Vec<u64> = Vec::new();
        for (k, &i) in idxs.iter().enumerate() {
            if let Some(block) = got[k] {
                out[i] = block;
                if tracing {
                    hit_addrs.push(addrs[i]);
                }
            }
        }
        // The cached blocks all shared the one serve interval: one
        // weighted record per visit instead of one per block.
        self.metrics
            .op_duration_n(MemOp::Read, hit_elapsed, hits as u64);

        // One batched pass over the shared AES key schedule generates
        // every absent counter-mode block's pad up front (the paper's
        // pads-before-data overlap, amortized page-wide).
        let mut pad_reqs: Vec<(u64, u64)> = Vec::new();
        for (k, &i) in idxs.iter().enumerate() {
            if got[k].is_none() {
                let addr = addrs[i];
                let counter = cb.counter(self.geo.slot_of(addr));
                if counter <= self.saturation {
                    pad_reqs.push((addr, counter));
                }
            }
        }
        let p0 = Instant::now();
        let pads = keys.otp().pad_batch64(&pad_reqs);
        let pad_iv = (p0, Instant::now());
        if sampled {
            segs[TailCause::Pad as usize] +=
                pad_iv.1.saturating_duration_since(pad_iv.0).as_nanos() as u64;
        }

        let mut traced: Vec<(u64, ReadMarks)> = Vec::new();
        let mut fresh: Vec<(usize, Block)> = Vec::new();
        let mut next_pad = 0usize;
        for (k, &i) in idxs.iter().enumerate() {
            if got[k].is_some() {
                continue;
            }
            let addr = addrs[i];
            let counter = cb.counter(self.geo.slot_of(addr));
            if counter > self.saturation {
                self.metrics.counterless_read();
            }
            let batch_pad = (counter <= self.saturation).then(|| {
                let pad = &pads[next_pad];
                next_pad += 1;
                (pad, pad_iv)
            });
            let (block, marks) = self.read_one(keys, addr, counter, batch_pad)?;
            if sampled {
                let iv = |(a, b): (Instant, Instant)| b.saturating_duration_since(a).as_nanos() as u64;
                // ECC decode rides the store segment: it is part of
                // turning the fetched word into usable bytes.
                segs[TailCause::Store as usize] += iv(marks.data) + iv(marks.ecc);
                segs[TailCause::Mac as usize] += iv(marks.mac);
                if let Some(x) = marks.xts {
                    segs[TailCause::Pad as usize] += iv(x);
                }
            }
            // The marks are free (span tracing reads those clocks
            // anyway), but each histogram record touches a bucket
            // cache line the workload then evicts, so the per-block
            // stage records are sampled like the write-path probes.
            if self.metrics.sample() {
                self.metrics.stage_duration(
                    MemOp::Read,
                    MemStage::MacVerify,
                    marks.mac.1.saturating_duration_since(marks.mac.0),
                );
                if let Some((p0, p1)) = marks.pad {
                    self.metrics.stage_duration(
                        MemOp::Read,
                        MemStage::PadGen,
                        p1.saturating_duration_since(p0),
                    );
                }
                if let Some((x0, x1)) = marks.xts {
                    self.metrics.stage_duration(
                        MemOp::Read,
                        MemStage::PadGen,
                        x1.saturating_duration_since(x0),
                    );
                }
            }
            self.metrics.op_duration(
                MemOp::Read,
                marks.ready.saturating_duration_since(marks.issue),
            );
            out[i] = block;
            fresh.push((self.geo.slot_of(addr), block));
            if tracing {
                traced.push((addr, marks));
            }
        }
        if tracing {
            if !hit_addrs.is_empty() {
                self.emit_hit_spans(issue, served, &hit_addrs);
            }
            if !traced.is_empty() {
                // A partial hit has no verify interval: its first
                // request gets a point counter fetch like the rest.
                let (m0, m1) = meta.unwrap_or((issue, issue));
                self.emit_read_spans(m0, m1, &traced);
            }
        }
        // Flight-recorder ring writes ride the caller's per-page-visit
        // sampling decision: the ring is a diagnostic trace, not an
        // exact count, and recording every visit would cost more than
        // the cache-served read it describes.
        if sampled {
            self.flight.read_page(page, idxs.len() as u64);
            if hits > 0 {
                self.flight.read_hit(page, hits as u64);
            }
        }

        // Install (or extend) the verified image while still under the
        // shard read lock: no write can have intervened, so the entry
        // matches the store exactly.
        if let Some(cache) = &self.cache {
            if was_partial {
                cache.with_mut(page, |e| {
                    if e.epoch == epoch {
                        for &(slot, block) in &fresh {
                            e.blocks[slot] = block;
                            e.present |= 1 << slot;
                        }
                    }
                });
            } else {
                let mut blocks =
                    vec![[0u8; BLOCK_BYTES]; PAGE_BLOCKS as usize].into_boxed_slice();
                let mut present = 0u64;
                for &(slot, block) in &fresh {
                    blocks[slot] = block;
                    present |= 1 << slot;
                }
                self.metrics.cache_fill();
                let entry = PageCacheEntry {
                    epoch,
                    cb,
                    blocks,
                    present,
                };
                if cache.insert(page, entry).is_some() {
                    self.metrics.cache_evict();
                }
            }
        }
        Ok(())
    }

    fn batch_write_inner(&self, writes: &[(u64, Block)]) -> Result<(), MemError> {
        for &(addr, _) in writes {
            self.check_addr(addr)?;
        }
        let mut by_page: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, &(addr, _)) in writes.iter().enumerate() {
            by_page.entry(self.geo.page_of(addr)).or_default().push(i);
        }
        for (page, idxs) in by_page {
            let shard_idx = self.shard_index(page);
            // Same shared per-page-visit sampling decision as the read
            // path: lock probes and the fan-in histogram thin together.
            let sampled = self.metrics.sample();
            let lock_probe = sampled.then(Stamp::now);
            let _shard = self.shard(page).write().unwrap_or_else(PoisonError::into_inner);
            let acquired = lock_probe.map(|w| {
                let a = Stamp::now();
                self.metrics.lock_wait(shard_idx, w, a);
                self.flight.lock_wait(shard_idx, a.since_ns(w));
                a
            });
            let keys = self.keys();
            if sampled {
                self.metrics.fanin_write(idxs.len() as u64);
            }
            // Tenant blame accumulates whatever segments this visit
            // happens to measure (the write path's probes are sampled
            // per block); ciphertext observations are exact.
            let mut segs = [0u64; TAIL_CAUSES];
            if let (Some(w), Some(a)) = (lock_probe, acquired) {
                segs[TailCause::Lock as usize] = a.since_ns(w);
            }
            let mut observed_blocks = 0u64;
            // Precise invalidation, under the shard write lock and
            // before any word changes: only this page's entry drops, so
            // readers of other pages keep their hits and no reader can
            // ever see plaintext staler than the store.
            if let Some(cache) = &self.cache {
                if cache.remove(page) {
                    self.metrics.cache_invalidated(CacheCause::Write, 1);
                }
            }
            let mut root = self.tree.write().unwrap_or_else(PoisonError::into_inner);
            // The write path has no pre-existing marks to reuse (the
            // read path rides the span tracer's), so its tree-walk and
            // per-block stage probes are sampled too.
            let tree_probe = self.metrics.sample().then(Stamp::now);
            let mut v = self.verify_page(&keys, page, *root, writes[idxs[0]].0)?;
            if let Some(t0) = tree_probe {
                let t1 = Stamp::now();
                self.metrics
                    .stage_between(MemOp::Write, MemStage::TreeWalk, t0, t1);
                segs[TailCause::TreeWalk as usize] += t1.since_ns(t0);
            }
            for &i in &idxs {
                // One sampling decision per block: a sampled block gets
                // the full probe set (op latency, commit, pad gen); an
                // unsampled block reads no clocks at all.
                let block_probe = self.metrics.sample();
                let b0 = block_probe.then(Stamp::now);
                let (addr, block) = writes[i];
                let slot = self.geo.slot_of(addr);
                let old_cb = v.cb.clone();
                let outcome = v.cb.increment(slot);
                if outcome.new_counter > self.saturation {
                    self.metrics.counterless_write();
                }
                // On a page roll, verify and decrypt every co-resident
                // block under its old counter *before* committing
                // anything, so a tampered neighbour aborts cleanly.
                let mut reencrypt: Vec<(u64, Block, u64)> = Vec::new();
                if let Some(others) = &outcome.page_reencryption {
                    self.metrics.page_roll();
                    self.flight.page_roll(page);
                    let m0 = Stamp::now();
                    for &(other_slot, new_counter) in others {
                        let other_addr = page * PAGE_BLOCKS + other_slot as u64;
                        if other_addr >= self.geo.data_blocks() {
                            continue;
                        }
                        let word = self.backend.read_word(self.geo.data_word(other_addr))?;
                        let pt = decrypt_verify(
                            &keys,
                            other_addr,
                            &word,
                            old_cb.counter(other_slot),
                            self.saturation,
                        )?;
                        reencrypt.push((other_addr, pt, new_counter));
                    }
                    let m1 = Stamp::now();
                    self.metrics
                        .stage_between(MemOp::Write, MemStage::MacVerify, m0, m1);
                    segs[TailCause::Mac as usize] += m1.since_ns(m0);
                }
                let c0 = block_probe.then(Stamp::now);
                self.commit_metadata(&keys, page, &mut v, &mut root)?;
                let c1 = c0.map(|_| Stamp::now());
                let word = encrypt_one(&keys, addr, &block, outcome.new_counter, self.saturation);
                if let (Some(c0), Some(c1)) = (c0, c1) {
                    let e1 = Stamp::now();
                    self.metrics
                        .stage_between(MemOp::Write, MemStage::Commit, c0, c1);
                    self.metrics
                        .stage_between(MemOp::Write, MemStage::PadGen, c1, e1);
                    segs[TailCause::Commit as usize] += c1.since_ns(c0);
                    segs[TailCause::Pad as usize] += e1.since_ns(c1);
                }
                self.store_write(self.geo.data_word(addr), &word)?;
                let observed = self.metrics.observe_ciphertext_write(page);
                self.flight.ciphertext_write(page, observed);
                observed_blocks += 1;
                for (other_addr, pt, new_counter) in reencrypt {
                    self.store_write(
                        self.geo.data_word(other_addr),
                        &encrypt_one(&keys, other_addr, &pt, new_counter, self.saturation),
                    )?;
                    let observed = self.metrics.observe_ciphertext_write(page);
                    self.flight.ciphertext_write(page, observed);
                    observed_blocks += 1;
                }
                if let Some(b0) = b0 {
                    self.metrics.op_between(MemOp::Write, b0, Stamp::now());
                }
            }
            self.flight.write_page(page, idxs.len() as u64);
            if let Some(tenants) = &self.tenants {
                tenants.ciphertext_writes(page, observed_blocks);
                if sampled {
                    if let Some(w) = lock_probe {
                        tenants.visit_sample(page, Stamp::now().since_ns(w), &segs);
                    }
                }
            }
            if let Some(acquired) = acquired {
                self.metrics.lock_hold(shard_idx, acquired);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FileBackend, VecBackend};
    use clme_obs::span::Blame;

    const MASTER: [u8; 32] = [0x42; 32];

    fn layer(blocks: u64) -> EncryptionLayer<VecBackend> {
        EncryptionLayer::new(VecBackend::for_blocks(blocks), blocks, MASTER).unwrap()
    }

    fn pattern(tag: u8) -> Block {
        core::array::from_fn(|i| tag ^ i as u8)
    }

    #[test]
    fn layer_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EncryptionLayer<VecBackend>>();
        assert_send_sync::<EncryptionLayer<FileBackend>>();
    }

    #[test]
    fn fresh_blocks_read_zero() {
        let mem = layer(130);
        for addr in [0, 64, 129] {
            assert_eq!(mem.read_block(addr).unwrap(), [0u8; 64]);
        }
    }

    #[test]
    fn write_read_round_trip_and_counters() {
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (65, pattern(2)), (129, pattern(3))])
            .unwrap();
        assert_eq!(mem.read_block(0).unwrap(), pattern(1));
        assert_eq!(mem.read_block(65).unwrap(), pattern(2));
        assert_eq!(mem.read_block(129).unwrap(), pattern(3));
        assert_eq!(mem.counter_of(0).unwrap(), 1);
        assert_eq!(mem.counter_of(1).unwrap(), 0);
        mem.write_block(0, &pattern(9)).unwrap();
        assert_eq!(mem.counter_of(0).unwrap(), 2);
        assert_eq!(mem.read_block(0).unwrap(), pattern(9));
        assert_eq!(mem.root(), 4, "root counts every metadata write");
    }

    #[test]
    fn out_of_bounds_is_typed() {
        let mem = layer(64);
        assert!(matches!(
            mem.batch_read(&[64]),
            Err(MemError::OutOfBounds { index: 64, limit: 64 })
        ));
        assert!(mem.batch_write(&[(64, [0u8; 64])]).is_err());
    }

    #[test]
    fn page_roll_reencrypts_co_residents() {
        let mem = layer(128);
        mem.write_block(1, &pattern(7)).unwrap();
        mem.write_block(63, &pattern(8)).unwrap();
        // 128 writes to block 0 overflow its 7-bit minor and roll page 0.
        for i in 0..128u32 {
            mem.write_block(0, &pattern(i as u8)).unwrap();
        }
        assert_eq!(mem.counter_of(0).unwrap(), 128);
        assert_eq!(mem.counter_of(1).unwrap(), 128, "co-resident rolled");
        assert_eq!(mem.read_block(0).unwrap(), pattern(127));
        assert_eq!(mem.read_block(1).unwrap(), pattern(7));
        assert_eq!(mem.read_block(63).unwrap(), pattern(8));
        // Page 1 was untouched.
        assert_eq!(mem.counter_of(64).unwrap(), 0);
    }

    #[test]
    fn saturation_switches_to_counterless_permanently() {
        let backend = VecBackend::for_blocks(64);
        let opts = LayerOptions {
            counter_saturation: 3,
            ..LayerOptions::default()
        };
        let mem = EncryptionLayer::with_options(backend, 64, MASTER, opts).unwrap();
        for round in 0..5u8 {
            mem.write_block(7, &pattern(round)).unwrap();
        }
        assert!(mem.is_counterless(7).unwrap());
        assert_eq!(mem.read_block(7).unwrap(), pattern(4));
        // Still writable, still counterless.
        mem.write_block(7, &pattern(9)).unwrap();
        assert_eq!(mem.read_block(7).unwrap(), pattern(9));
        assert!(mem.is_counterless(7).unwrap());
        // A sibling block below saturation stays in counter mode.
        mem.write_block(8, &pattern(1)).unwrap();
        assert!(!mem.is_counterless(8).unwrap());
    }

    #[test]
    fn attach_resumes_and_wrong_root_fails() {
        let mem = layer(128);
        mem.write_block(5, &pattern(5)).unwrap();
        let root = mem.root();
        let backend = mem.into_backend();
        let resumed = EncryptionLayer::attach(backend, 128, MASTER, root).unwrap();
        assert_eq!(resumed.read_block(5).unwrap(), pattern(5));
        // A stale root (replayed metadata) must fail tree verification.
        let backend = resumed.into_backend();
        let stale = EncryptionLayer::attach(backend, 128, MASTER, root + 1).unwrap();
        let err = stale.read_block(5).unwrap_err();
        assert!(
            matches!(
                err.integrity().map(|e| e.class),
                Some(TamperClass::TreeNode { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let backend = VecBackend::new(10);
        assert!(matches!(
            EncryptionLayer::new(backend, 128, MASTER),
            Err(MemError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn rekey_reencrypts_everything_and_old_key_fails() {
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (129, pattern(2))]).unwrap();
        let before: Vec<StoredWord> = (0..130)
            .map(|a| mem.backend().read_word(a).unwrap())
            .collect();
        let report = mem.rekey([0x77; 32]).unwrap();
        assert_eq!(report.blocks, 130);
        assert_eq!(report.pages, 3);
        // Every stored data word changed, plaintext did not.
        let after: Vec<StoredWord> = (0..130)
            .map(|a| mem.backend().read_word(a).unwrap())
            .collect();
        for (a, b) in before.iter().zip(&after) {
            assert_ne!(a, b, "rekey must rewrite every block");
        }
        assert_eq!(mem.read_block(0).unwrap(), pattern(1));
        assert_eq!(mem.read_block(129).unwrap(), pattern(2));
        // The old key no longer verifies anything.
        let root = mem.root();
        let backend = mem.into_backend();
        let old = EncryptionLayer::attach(backend, 130, MASTER, root).unwrap();
        assert!(old.read_block(0).is_err());
    }

    #[test]
    fn reads_emit_spans_when_traced() {
        let mem = layer(128);
        mem.batch_write(&[(0, pattern(1)), (64, pattern(2))]).unwrap();
        mem.install_tracer(SpanTracer::new(64));
        let _ = mem.batch_read(&[0, 1, 64]).unwrap();
        let tracer = mem.take_tracer().expect("tracer installed");
        assert_eq!(tracer.total_requests(), 3);
        assert_eq!(tracer.tally().total(), 3);
        // The software data path verifies the MAC after the data
        // arrives, so counter-mode reads are mac- (or cipher-) bound —
        // never counter-bound: metadata is verified before the data.
        assert_eq!(tracer.tally().count(Blame::Counter), 0);
        for req in tracer.sampled() {
            assert!(req.children.iter().any(|c| c.kind == SpanKind::CounterFetch));
            assert!(req.children.iter().any(|c| c.kind == SpanKind::DataDram));
            assert!(req.ready >= req.data_arrival);
        }
        // Untraced reads after take_tracer still work.
        assert_eq!(mem.read_block(0).unwrap(), pattern(1));
    }

    #[test]
    fn file_backend_layer_round_trips_and_persists() {
        let path = std::env::temp_dir().join(format!(
            "clme-mem-layer-{}.store",
            std::process::id()
        ));
        let mem = EncryptionLayer::new(
            FileBackend::create_for_blocks(&path, 96).unwrap(),
            96,
            MASTER,
        )
        .unwrap();
        mem.batch_write(&[(0, pattern(3)), (95, pattern(4))]).unwrap();
        assert_eq!(mem.read_block(95).unwrap(), pattern(4));
        let root = mem.root();
        drop(mem.into_backend());
        let reopened =
            EncryptionLayer::attach(FileBackend::open(&path).unwrap(), 96, MASTER, root).unwrap();
        assert_eq!(reopened.read_block(0).unwrap(), pattern(3));
        assert_eq!(reopened.read_block(95).unwrap(), pattern(4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn metrics_count_traffic_stages_and_locks() {
        use crate::metrics::{MemOp, MemStage};
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (65, pattern(2))]).unwrap();
        let _ = mem.batch_read(&[0, 65, 129]).unwrap();
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.blocks_written, 2);
        assert_eq!(snap.blocks_read, 3);
        assert_eq!(snap.batch_writes, 1);
        assert_eq!(snap.batch_reads, 1);
        assert_eq!(snap.integrity_errors, 0);
        assert_eq!(snap.op(MemOp::Read).latency.count(), 3);
        // Write op latency is part of the sampled per-block probe set.
        assert!(snap.op(MemOp::Write).latency.count() <= 2);
        assert_eq!(snap.op(MemOp::Batch).latency.count(), 2);
        // The read tree walk reuses the span tracer's marks and records
        // once per page group, so it is exact: reads span pages {0,1,2}.
        assert_eq!(snap.op(MemOp::Read).stages[MemStage::TreeWalk as usize].count(), 3);
        // Per-block stage records and lock waits are sampled (1-in-8
        // write-side, 1-in-64 read-side), so
        // only bounds are deterministic here: three read blocks, two
        // write page groups, five groups total took a shard lock.
        assert!(snap.op(MemOp::Read).stages[MemStage::MacVerify as usize].count() <= 3);
        assert!(snap.op(MemOp::Read).stages[MemStage::PadGen as usize].count() <= 3);
        assert!(snap.op(MemOp::Write).stages[MemStage::TreeWalk as usize].count() <= 2);
        assert!(snap.op(MemOp::Write).stages[MemStage::Commit as usize].count() <= 2);
        let waits: u64 = snap.lock_wait.iter().map(|h| h.count()).sum();
        let holds: u64 = snap.lock_hold.iter().map(|h| h.count()).sum();
        assert_eq!(waits, holds, "every sampled wait pairs with a hold");
        assert!(
            (1..=5).contains(&waits),
            "the thread's first probe always fires; got {waits} waits"
        );
        assert!(snap.store.words_read > 0);
        assert!(snap.store.words_written > 0);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn sampled_probes_fire_under_sustained_traffic() {
        use crate::metrics::{MemOp, MemStage};
        let mem = layer(64);
        // Small batches so the per-round probe-tick stride — 5 write
        // ticks (lock + tree walk + one per block) plus 2 read-miss
        // block ticks = 7 — is coprime with the 1-in-8 sample period
        // and every probe site cycles through a firing tick. (The read
        // path's shared lock/fan-in decision rides its own 1-in-64
        // tick and does not advance this one.)
        for round in 0..16u8 {
            mem.batch_write(&[
                (0, pattern(round)),
                (1, pattern(round.wrapping_add(1))),
                (2, pattern(round.wrapping_add(2))),
            ])
            .unwrap();
            let _ = mem.batch_read(&[0, 1]).unwrap();
        }
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.blocks_written, 48);
        assert_eq!(snap.blocks_read, 32);
        let write_lat = snap.op(MemOp::Write).latency.count();
        assert!(
            (1..=48).contains(&write_lat),
            "sampled write latency probes must fire; got {write_lat}"
        );
        assert_eq!(snap.op(MemOp::Read).latency.count(), 32);
        assert!(snap.op(MemOp::Write).stages[MemStage::TreeWalk as usize].count() >= 1);
        assert!(snap.op(MemOp::Write).stages[MemStage::Commit as usize].count() >= 1);
        assert!(snap.op(MemOp::Write).stages[MemStage::PadGen as usize].count() >= 1);
        assert!(snap.op(MemOp::Read).stages[MemStage::MacVerify as usize].count() >= 1);
        assert!(snap.op(MemOp::Read).stages[MemStage::PadGen as usize].count() >= 1);
        let waits: u64 = snap.lock_wait.iter().map(|h| h.count()).sum();
        assert!(waits >= 1, "sustained traffic must sample some lock waits");
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn metrics_track_page_rolls_and_observed_writes() {
        let mem = layer(128);
        mem.write_block(1, &pattern(7)).unwrap();
        for i in 0..128u32 {
            mem.write_block(0, &pattern(i as u8)).unwrap();
        }
        let snap = mem.metrics_snapshot();
        assert!(snap.page_rolls >= 1, "minor overflow rolled the page");
        // 129 direct writes plus the co-residents re-encrypted on rolls.
        assert!(snap.observed_writes_total > 129);
        assert_eq!(snap.observed_writes_max_page, 0);
        assert_eq!(snap.observed_writes_max, mem.metrics().observed_writes(0));
        assert_eq!(mem.metrics().observed_writes(1), snap.observed_writes_total - mem.metrics().observed_writes(0));
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn metrics_track_rekey_progress_and_key_dwell() {
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (129, pattern(2))]).unwrap();
        mem.rekey([0x77; 32]).unwrap();
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.rekey.sweeps, 1);
        assert!(!snap.rekey.in_progress);
        assert_eq!(snap.rekey.pages_total, 3);
        assert_eq!(snap.rekey.pages_done, 3);
        // The sweep re-wrote every live data block.
        assert!(snap.observed_writes_total >= 2 + 130);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn metrics_prom_exposition_has_layer_and_store_families() {
        let mem = layer(64);
        mem.write_block(0, &pattern(5)).unwrap();
        let text = mem.metrics_prom();
        for family in [
            "clme_mem_blocks_written_total",
            "clme_mem_op_latency_ps",
            "clme_mem_lock_wait_ps",
            "clme_mem_rekey_in_progress",
            "clme_store_words_written_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn read_cache_hits_skip_store_traffic_and_rebias_blame() {
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (1, pattern(2))]).unwrap();
        assert_eq!(mem.batch_read(&[0, 1]).unwrap(), vec![pattern(1), pattern(2)]);
        let words_before = mem.metrics_snapshot().store.words_read;
        mem.install_tracer(SpanTracer::new(16));
        assert_eq!(mem.batch_read(&[0, 1]).unwrap(), vec![pattern(1), pattern(2)]);
        let tracer = mem.take_tracer().expect("tracer installed");
        assert_eq!(
            tracer.tally().count(Blame::Dram),
            2,
            "hits are DRAM-bound, never MAC-bound"
        );
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.store.words_read, words_before, "a full hit reads no words");
        assert_eq!(snap.cache.hits, 1);
        assert_eq!(snap.cache.misses, 1);
        assert_eq!(snap.cache.fills, 1);
        assert_eq!(
            snap.op(MemOp::Read).latency.count(),
            4,
            "hit latencies stay exhaustive"
        );
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn partial_hits_reuse_the_counter_block_and_merge() {
        use crate::metrics::MemStage;
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (1, pattern(2))]).unwrap();
        let _ = mem.batch_read(&[0]).unwrap(); // miss: fills slot 0
        let got = mem.batch_read(&[0, 1]).unwrap(); // partial: 1 from store
        assert_eq!(got, vec![pattern(1), pattern(2)]);
        let got = mem.batch_read(&[1]).unwrap(); // merged slot -> full hit
        assert_eq!(got, vec![pattern(2)]);
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.cache.misses, 1);
        assert_eq!(snap.cache.partial_hits, 1);
        assert_eq!(snap.cache.hits, 1);
        assert_eq!(snap.cache.fills, 1);
        // Only the cold miss walked the tree; the partial hit trusted
        // the cached counter block.
        assert_eq!(snap.op(MemOp::Read).stages[MemStage::TreeWalk as usize].count(), 1);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn writes_invalidate_exactly_their_page() {
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (64, pattern(2))]).unwrap();
        let _ = mem.batch_read(&[0, 64]).unwrap(); // fills pages 0 and 1
        mem.write_block(0, &pattern(9)).unwrap(); // drops page 0 only
        assert_eq!(mem.read_block(64).unwrap(), pattern(2)); // page 1 still hits
        assert_eq!(mem.read_block(0).unwrap(), pattern(9)); // page 0 re-misses
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.cache.invalidated(CacheCause::Write), 1);
        assert_eq!(snap.cache.hits, 1);
        assert_eq!(snap.cache.misses, 3);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn foreign_writes_purge_the_cache() {
        let mem = layer(130);
        mem.write_block(0, &pattern(1)).unwrap();
        assert_eq!(mem.read_block(0).unwrap(), pattern(1)); // fill
        // An adversary flips a byte below the layer: the next lookup
        // must purge and re-verify — never serve cached plaintext over
        // a store-level flip.
        let word0 = mem.backend().read_word(0).unwrap();
        let mut flipped = word0;
        flipped[3] ^= 0x01;
        mem.backend().write_word(0, &flipped).unwrap();
        assert!(mem.read_block(0).is_err());
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.cache.foreign_purges, 1);
        assert_eq!(snap.cache.invalidated(CacheCause::Foreign), 1);
        // Restoring the word is another foreign write: purged again,
        // and reads recover.
        mem.backend().write_word(0, &word0).unwrap();
        assert_eq!(mem.read_block(0).unwrap(), pattern(1));
        assert_eq!(mem.metrics_snapshot().cache.foreign_purges, 2);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn rekey_drops_every_cached_page() {
        let mem = layer(130);
        mem.batch_write(&[(0, pattern(1)), (64, pattern(2))]).unwrap();
        let _ = mem.batch_read(&[0, 64]).unwrap();
        mem.rekey([0x55; 32]).unwrap();
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.cache.invalidated(CacheCause::Rekey), 2);
        assert_eq!(snap.cache.resident_pages, 0);
        // Reads after the sweep verify under the new key and refill.
        assert_eq!(mem.read_block(0).unwrap(), pattern(1));
        assert_eq!(mem.metrics_snapshot().cache.misses, 3);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn cache_disabled_counts_bypasses_and_still_verifies() {
        use crate::metrics::MemStage;
        let opts = LayerOptions {
            cache_pages: 0,
            ..LayerOptions::default()
        };
        let mem =
            EncryptionLayer::with_options(VecBackend::for_blocks(130), 130, MASTER, opts).unwrap();
        mem.write_block(0, &pattern(1)).unwrap();
        assert_eq!(mem.read_block(0).unwrap(), pattern(1));
        assert_eq!(mem.read_block(0).unwrap(), pattern(1));
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.cache.bypasses, 2);
        assert_eq!(snap.cache.hits + snap.cache.partial_hits + snap.cache.misses, 0);
        // Two identical reads, two full verification chains.
        assert_eq!(snap.op(MemOp::Read).stages[MemStage::TreeWalk as usize].count(), 2);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn tiny_cache_evicts_but_keeps_serving_correctly() {
        let blocks = 4 * PAGE_BLOCKS;
        let opts = LayerOptions {
            cache_pages: 2,
            shards: 1,
            ..LayerOptions::default()
        };
        let mem =
            EncryptionLayer::with_options(VecBackend::for_blocks(blocks), blocks, MASTER, opts)
                .unwrap();
        for page in 0..4u64 {
            mem.write_block(page * PAGE_BLOCKS, &pattern(page as u8)).unwrap();
        }
        for round in 0..3 {
            for page in 0..4u64 {
                assert_eq!(
                    mem.read_block(page * PAGE_BLOCKS).unwrap(),
                    pattern(page as u8),
                    "round {round}"
                );
            }
        }
        let snap = mem.metrics_snapshot();
        assert!(snap.cache.evictions > 0, "4 hot pages must not fit in 2 slots");
        assert!(snap.cache.resident_pages <= 2);
        assert_eq!(snap.cache.fills, snap.cache.misses);
    }

    #[test]
    #[cfg(feature = "telemetry-off")]
    fn telemetry_off_layer_still_round_trips_with_empty_snapshot() {
        let mem = layer(64);
        mem.write_block(0, &pattern(5)).unwrap();
        assert_eq!(mem.read_block(0).unwrap(), pattern(5));
        let snap = mem.metrics_snapshot();
        assert_eq!(snap.blocks_written, 0);
        assert!(mem.metrics_prom().is_empty());
    }
}
