//! Typed failures of the encrypted-memory layer.

use std::fmt;

/// Which verification stage caught a corruption.
///
/// The classes mirror the physical position classes an attacker can
/// touch: the data word's ciphertext/MAC/parity lanes, the page's
/// counter word, and the integrity-tree node words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TamperClass {
    /// The block MAC (Carter–Wegman under counter mode, SHA-3 under
    /// counterless) disagreed with the decrypted block.
    DataMac,
    /// The EncryptionMetadata word decoded from the block's parity lane
    /// disagreed with the verified counter metadata.
    Meta,
    /// The counter-block word's keyed MAC failed.
    CounterBlock,
    /// An integrity-tree node word's keyed MAC failed at this level
    /// (level 0 holds the per-page leaf counters).
    TreeNode {
        /// Tree level of the failing node word.
        level: u8,
    },
}

impl TamperClass {
    /// Stable identifier for dump bundles and metrics labels. Level is
    /// carried separately by [`code`](Self::code); the name is the class
    /// family only, so it never changes with geometry.
    pub fn name(self) -> &'static str {
        match self {
            TamperClass::DataMac => "data-mac",
            TamperClass::Meta => "meta",
            TamperClass::CounterBlock => "counter-block",
            TamperClass::TreeNode { .. } => "tree-node",
        }
    }

    /// Stable numeric code for compact serialization (flight-recorder
    /// events, `.clmedump` bundles): 0–2 for the flat classes, `3 +
    /// level` for tree nodes. [`from_code`](Self::from_code) inverts it.
    pub fn code(self) -> u16 {
        match self {
            TamperClass::DataMac => 0,
            TamperClass::Meta => 1,
            TamperClass::CounterBlock => 2,
            TamperClass::TreeNode { level } => 3 + level as u16,
        }
    }

    /// Inverse of [`code`](Self::code). `None` for codes no class maps
    /// to (tree levels above `u8::MAX` cannot be encoded).
    pub fn from_code(code: u16) -> Option<TamperClass> {
        match code {
            0 => Some(TamperClass::DataMac),
            1 => Some(TamperClass::Meta),
            2 => Some(TamperClass::CounterBlock),
            n => u8::try_from(n - 3).ok().map(|level| TamperClass::TreeNode { level }),
        }
    }
}

impl fmt::Display for TamperClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperClass::DataMac => f.write_str("block MAC"),
            TamperClass::Meta => f.write_str("encryption metadata"),
            TamperClass::CounterBlock => f.write_str("counter block"),
            TamperClass::TreeNode { level } => write!(f, "tree node (level {level})"),
        }
    }
}

/// A read (or a re-encryption pass) found state that fails
/// verification: tampering, replay, or a wrong key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IntegrityError {
    /// The block address whose access detected the corruption.
    pub addr: u64,
    /// Which verification stage failed.
    pub class: TamperClass,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "integrity violation at block {:#x}: {} verification failed",
            self.addr, self.class
        )
    }
}

impl std::error::Error for IntegrityError {}

/// Any failure of an encrypted-memory operation.
#[derive(Debug)]
pub enum MemError {
    /// A block address (or stored-word index) beyond the store.
    OutOfBounds {
        /// The offending index.
        index: u64,
        /// Number of valid indices.
        limit: u64,
    },
    /// Verification failed — see [`IntegrityError`].
    Integrity(IntegrityError),
    /// The backing store failed (file backends only).
    Io(std::io::Error),
    /// The backend's size does not match the layer's geometry.
    GeometryMismatch {
        /// Words the geometry requires.
        expected_words: u64,
        /// Words the backend actually holds.
        actual_words: u64,
    },
}

impl MemError {
    /// The integrity error, if that is what this is.
    pub fn integrity(&self) -> Option<&IntegrityError> {
        match self {
            MemError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { index, limit } => {
                write!(f, "index {index} out of bounds (limit {limit})")
            }
            MemError::Integrity(e) => e.fmt(f),
            MemError::Io(e) => write!(f, "backing store I/O failed: {e}"),
            MemError::GeometryMismatch {
                expected_words,
                actual_words,
            } => write!(
                f,
                "backend holds {actual_words} words but the geometry needs {expected_words}"
            ),
        }
    }
}

impl std::error::Error for MemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemError::Integrity(e) => Some(e),
            MemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IntegrityError> for MemError {
    fn from(e: IntegrityError) -> MemError {
        MemError::Integrity(e)
    }
}

impl From<std::io::Error> for MemError {
    fn from(e: std::io::Error) -> MemError {
        MemError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_class() {
        let classes = [
            TamperClass::DataMac,
            TamperClass::Meta,
            TamperClass::CounterBlock,
            TamperClass::TreeNode { level: 2 },
        ];
        let rendered: Vec<String> = classes.iter().map(|c| c.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            for b in &rendered[i + 1..] {
                assert_ne!(a, b, "classes must render distinctly");
            }
        }
        let err = IntegrityError {
            addr: 0x40,
            class: TamperClass::Meta,
        };
        assert!(err.to_string().contains("0x40"));
        assert!(MemError::from(err).integrity().is_some());
    }

    #[test]
    fn tamper_codes_round_trip() {
        let classes = [
            TamperClass::DataMac,
            TamperClass::Meta,
            TamperClass::CounterBlock,
            TamperClass::TreeNode { level: 0 },
            TamperClass::TreeNode { level: 7 },
            TamperClass::TreeNode { level: 255 },
        ];
        for c in classes {
            assert_eq!(TamperClass::from_code(c.code()), Some(c));
        }
        assert_eq!(TamperClass::from_code(3), Some(TamperClass::TreeNode { level: 0 }));
        let mut seen = std::collections::HashSet::new();
        for c in classes {
            assert!(seen.insert(c.code()), "codes must be unique");
        }
        assert!(TamperClass::from_code(3 + 256).is_none(), "level beyond u8 rejected");
    }

    #[test]
    fn io_errors_wrap() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "disk gone");
        let err = MemError::from(io);
        assert!(err.integrity().is_none());
        assert!(err.to_string().contains("disk gone"));
    }
}
