//! Backing stores: flat arrays of 80-byte stored words.
//!
//! A stored word is one encoded memory block — 64 bytes of payload plus
//! the 8-byte MAC lane and 8-byte parity/reserved lane, exactly the
//! 10-chip DDR5 footprint of the Synergy layout. Backends are *dumb*:
//! they hold opaque words and know nothing about encryption, which is
//! also what makes them the attacker's surface — a tamper test (or a
//! bus adversary) flips bytes here, below the encryption layer.

use crate::cache::ClockCache;
use crate::error::MemError;
use crate::geometry::Geometry;
use crate::metrics::StoreMetrics;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

/// Bytes per stored word: 64 payload + 8 MAC lane + 8 parity lane.
pub const WORD_BYTES: usize = 80;

/// One stored word.
pub type StoredWord = [u8; WORD_BYTES];

/// A flat, thread-safe store of [`StoredWord`]s.
pub trait StoreBackend: Send + Sync {
    /// Number of stored words.
    fn words(&self) -> u64;

    /// Reads one word.
    fn read_word(&self, index: u64) -> Result<StoredWord, MemError>;

    /// Writes one word.
    fn write_word(&self, index: u64, word: &StoredWord) -> Result<(), MemError>;

    /// The backend's telemetry counters, when it keeps any. The
    /// encryption layer folds these into its metrics snapshot; the
    /// default is for backends with no instrumentation.
    fn store_metrics(&self) -> Option<&StoreMetrics> {
        None
    }

    /// Stable backend identifier recorded into post-mortem dump bundles
    /// so a replay can rebuild the same backend class. The default is
    /// for out-of-tree backends the replayer does not know.
    fn kind(&self) -> &'static str {
        "unknown"
    }

    /// A counter that advances on **every** successful `write_word`,
    /// regardless of who called it. The encryption layer compares it
    /// against its own write count to detect *foreign* writes — a
    /// tamper harness or bus adversary mutating words underneath the
    /// layer — and purges its verified-page cache when they differ,
    /// so cached plaintext can never mask a store-level flip. `None`
    /// (the default) means the backend keeps no such counter and the
    /// layer must bypass its cache entirely.
    fn write_generation(&self) -> Option<u64> {
        None
    }
}

fn check_bounds(index: u64, limit: u64) -> Result<(), MemError> {
    if index < limit {
        Ok(())
    } else {
        Err(MemError::OutOfBounds { index, limit })
    }
}

// ---------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------

/// Words per lock segment in [`VecBackend`]; segments stripe by index
/// so neighbouring words rarely contend.
const VEC_SEGMENTS: usize = 16;

/// An in-memory backend: the words live in striped `RwLock`ed vectors.
pub struct VecBackend {
    segments: Vec<RwLock<Vec<StoredWord>>>,
    words: u64,
    generation: AtomicU64,
    metrics: StoreMetrics,
}

impl VecBackend {
    /// A zeroed store of `words` stored words.
    pub fn new(words: u64) -> VecBackend {
        let mut segments = Vec::with_capacity(VEC_SEGMENTS);
        for s in 0..VEC_SEGMENTS as u64 {
            // Words w with w % VEC_SEGMENTS == s.
            let len = (words + VEC_SEGMENTS as u64 - 1 - s) / VEC_SEGMENTS as u64;
            segments.push(RwLock::new(vec![[0u8; WORD_BYTES]; len as usize]));
        }
        VecBackend {
            segments,
            words,
            generation: AtomicU64::new(0),
            metrics: StoreMetrics::new(),
        }
    }

    /// A zeroed store sized for `data_blocks` blocks plus all the
    /// counter and tree metadata the encryption layer needs.
    pub fn for_blocks(data_blocks: u64) -> VecBackend {
        VecBackend::new(Geometry::for_blocks(data_blocks).total_words())
    }

    fn locate(&self, index: u64) -> (usize, usize) {
        (
            (index % VEC_SEGMENTS as u64) as usize,
            (index / VEC_SEGMENTS as u64) as usize,
        )
    }
}

impl StoreBackend for VecBackend {
    fn words(&self) -> u64 {
        self.words
    }

    fn read_word(&self, index: u64) -> Result<StoredWord, MemError> {
        check_bounds(index, self.words)?;
        self.metrics.word_read();
        let (seg, pos) = self.locate(index);
        let guard = self.segments[seg]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        Ok(guard[pos])
    }

    fn write_word(&self, index: u64, word: &StoredWord) -> Result<(), MemError> {
        check_bounds(index, self.words)?;
        self.metrics.word_written();
        // SeqCst so the layer's gen-then-self-count read order gives a
        // foreign-write estimate that never exceeds the true count.
        self.generation.fetch_add(1, Ordering::SeqCst);
        let (seg, pos) = self.locate(index);
        let mut guard = self.segments[seg]
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        guard[pos] = *word;
        Ok(())
    }

    fn store_metrics(&self) -> Option<&StoreMetrics> {
        Some(&self.metrics)
    }

    fn kind(&self) -> &'static str {
        "vec"
    }

    fn write_generation(&self) -> Option<u64> {
        Some(self.generation.load(Ordering::SeqCst))
    }
}

// ---------------------------------------------------------------------
// Paged file backend
// ---------------------------------------------------------------------

/// Stored words per cached file page (one 5 KB run of the file).
pub const FILE_PAGE_WORDS: u64 = 64;

/// Resident pages the file cache holds (same total footprint as the old
/// direct-mapped design, but CLOCK-managed so hot pages survive
/// conflict misses).
const FILE_CACHE_PAGES: usize = 64;

/// Shards of the file page cache's [`ClockCache`].
const FILE_CACHE_SHARDS: usize = 8;

/// Page-coherence stripes: all I/O for a page serialises on
/// `stripes[page % FILE_STRIPES]` so a racing read-miss fill can never
/// install bytes staler than a concurrent write-through.
const FILE_STRIPES: usize = 16;

/// An mmap-style paged file store: words live in a flat file, accessed
/// through positioned I/O with a write-through, write-allocate page
/// cache evicted by the crate-wide sharded CLOCK policy
/// ([`ClockCache`]) — the same machinery behind the encryption layer's
/// verified-page cache.
///
/// Dropping the backend does **not** delete the file; reopen it with
/// [`FileBackend::open`] (and re-attach the layer with its saved root)
/// to get persistence.
pub struct FileBackend {
    file: File,
    path: PathBuf,
    words: u64,
    cache: ClockCache<Vec<u8>>,
    stripes: Vec<Mutex<()>>,
    generation: AtomicU64,
    metrics: StoreMetrics,
}

impl FileBackend {
    /// Creates (truncating) a zero-filled store of `words` words.
    pub fn create(path: impl AsRef<Path>, words: u64) -> Result<FileBackend, MemError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len(words * WORD_BYTES as u64)?;
        Ok(FileBackend::wrap(file, path, words))
    }

    /// Creates a store sized for `data_blocks` blocks plus metadata.
    pub fn create_for_blocks(
        path: impl AsRef<Path>,
        data_blocks: u64,
    ) -> Result<FileBackend, MemError> {
        FileBackend::create(path, Geometry::for_blocks(data_blocks).total_words())
    }

    /// Opens an existing store, inferring the word count from the file
    /// length (which must be a multiple of [`WORD_BYTES`]).
    pub fn open(path: impl AsRef<Path>) -> Result<FileBackend, MemError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % WORD_BYTES as u64 != 0 {
            return Err(MemError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("store length {len} is not a multiple of {WORD_BYTES}"),
            )));
        }
        Ok(FileBackend::wrap(file, path, len / WORD_BYTES as u64))
    }

    fn wrap(file: File, path: PathBuf, words: u64) -> FileBackend {
        FileBackend {
            file,
            path,
            words,
            cache: ClockCache::new(FILE_CACHE_SHARDS, FILE_CACHE_PAGES),
            stripes: (0..FILE_STRIPES).map(|_| Mutex::new(())).collect(),
            generation: AtomicU64::new(0),
            metrics: StoreMetrics::new(),
        }
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn page_len(&self, page: u64) -> usize {
        let first = page * FILE_PAGE_WORDS;
        let words = (self.words - first).min(FILE_PAGE_WORDS);
        words as usize * WORD_BYTES
    }

    fn stripe(&self, page: u64) -> std::sync::MutexGuard<'_, ()> {
        self.stripes[(page % FILE_STRIPES as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Reads the whole page from the file and installs it, counting the
    /// fill eviction (if any) against the `write_fill` side. Returns the
    /// fresh page bytes' word at `within`. Caller holds the page stripe.
    fn fill_page(&self, page: u64, within: usize, write_fill: bool) -> Result<StoredWord, MemError> {
        let mut bytes = vec![0u8; self.page_len(page)];
        self.metrics.file_read();
        self.read_at(&mut bytes, page * FILE_PAGE_WORDS * WORD_BYTES as u64)?;
        let mut word = [0u8; WORD_BYTES];
        word.copy_from_slice(&bytes[within..within + WORD_BYTES]);
        if self.cache.insert(page, bytes).is_some() {
            self.metrics.cache_evicted(write_fill);
        }
        Ok(word)
    }

    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<(), MemError> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)?;
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<(), MemError> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(buf)?;
        }
        Ok(())
    }
}

impl StoreBackend for FileBackend {
    fn words(&self) -> u64 {
        self.words
    }

    fn read_word(&self, index: u64) -> Result<StoredWord, MemError> {
        check_bounds(index, self.words)?;
        self.metrics.word_read();
        let page = index / FILE_PAGE_WORDS;
        let within = (index % FILE_PAGE_WORDS) as usize * WORD_BYTES;
        // Same-page operations serialise on the stripe so a miss fill
        // cannot install bytes older than a concurrent write-through.
        let _stripe = self.stripe(page);
        let hit = self.cache.with(page, |bytes| {
            let mut word = [0u8; WORD_BYTES];
            word.copy_from_slice(&bytes[within..within + WORD_BYTES]);
            word
        });
        if let Some(word) = hit {
            self.metrics.cache_hit();
            return Ok(word);
        }
        self.metrics.cache_miss();
        self.fill_page(page, within, false)
    }

    fn write_word(&self, index: u64, word: &StoredWord) -> Result<(), MemError> {
        check_bounds(index, self.words)?;
        self.metrics.word_written();
        self.generation.fetch_add(1, Ordering::SeqCst);
        let page = index / FILE_PAGE_WORDS;
        let within = (index % FILE_PAGE_WORDS) as usize * WORD_BYTES;
        // Hold the page stripe across file and cache updates so a racing
        // reader of the same page never caches stale bytes.
        let _stripe = self.stripe(page);
        self.metrics.file_write();
        self.write_at(word, index * WORD_BYTES as u64)?;
        let resident = self
            .cache
            .with_mut(page, |bytes| {
                bytes[within..within + WORD_BYTES].copy_from_slice(word)
            })
            .is_some();
        if resident {
            self.metrics.cache_hit();
        } else {
            // Write-allocate: the page we just touched is hot, so pull
            // it in (the file already holds the new word).
            self.metrics.cache_miss();
            self.fill_page(page, within, true)?;
        }
        Ok(())
    }

    fn store_metrics(&self) -> Option<&StoreMetrics> {
        Some(&self.metrics)
    }

    fn kind(&self) -> &'static str {
        "file"
    }

    fn write_generation(&self) -> Option<u64> {
        Some(self.generation.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clme-mem-store-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn vec_backend_round_trips_and_bounds_checks() {
        let store = VecBackend::new(100);
        assert_eq!(store.words(), 100);
        let word = [0xA5u8; WORD_BYTES];
        store.write_word(99, &word).unwrap();
        assert_eq!(store.read_word(99).unwrap(), word);
        assert_eq!(store.read_word(0).unwrap(), [0u8; WORD_BYTES]);
        assert!(matches!(
            store.read_word(100),
            Err(MemError::OutOfBounds { index: 100, limit: 100 })
        ));
        assert!(store.write_word(100, &word).is_err());
    }

    #[test]
    fn file_backend_round_trips_persists_and_bounds_checks() {
        let path = temp_path("roundtrip");
        {
            let store = FileBackend::create(&path, 150).unwrap();
            assert_eq!(store.words(), 150);
            let mut word = [0u8; WORD_BYTES];
            for (i, b) in word.iter_mut().enumerate() {
                *b = i as u8;
            }
            store.write_word(149, &word).unwrap();
            // Same cache page read-back and a cold page.
            assert_eq!(store.read_word(149).unwrap(), word);
            assert_eq!(store.read_word(0).unwrap(), [0u8; WORD_BYTES]);
            assert!(store.read_word(150).is_err());
        }
        {
            let store = FileBackend::open(&path).unwrap();
            assert_eq!(store.words(), 150);
            assert_eq!(store.read_word(149).unwrap()[5], 5);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_write_through_updates_cached_page() {
        let path = temp_path("writethrough");
        let store = FileBackend::create(&path, FILE_PAGE_WORDS * 2).unwrap();
        // Warm the cache slot for page 0, then write through it.
        assert_eq!(store.read_word(3).unwrap(), [0u8; WORD_BYTES]);
        let word = [0x5Cu8; WORD_BYTES];
        store.write_word(3, &word).unwrap();
        assert_eq!(store.read_word(3).unwrap(), word);
        drop(store);
        let store = FileBackend::open(&path).unwrap();
        assert_eq!(store.read_word(3).unwrap(), word);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn file_backend_counts_cache_hits_misses_and_split_evictions() {
        let path = temp_path("counters");
        // Shard 0 of the CLOCK cache holds FILE_CACHE_PAGES /
        // FILE_CACHE_SHARDS = 8 pages; pages that are multiples of 8
        // all land there, so nine of them overflow it.
        let per_shard = (FILE_CACHE_PAGES / FILE_CACHE_SHARDS) as u64;
        let stride = FILE_CACHE_SHARDS as u64;
        let store = FileBackend::create(&path, FILE_PAGE_WORDS * 73).unwrap();
        store.read_word(0).unwrap(); // cold miss + fill, no eviction
        store.read_word(1).unwrap(); // hit (same page)
        store.write_word(7, &[0x11u8; WORD_BYTES]).unwrap(); // write hit, write-through
        for i in 1..=per_shard {
            // Pages 8, 16, ..., 64: all shard 0. The last fill evicts.
            store.read_word(i * stride * FILE_PAGE_WORDS).unwrap();
        }
        // Page 72, shard 0, not resident: write-allocate evicts again.
        store
            .write_word(9 * stride * FILE_PAGE_WORDS, &[0x22u8; WORD_BYTES])
            .unwrap();
        let stats = store.store_metrics().unwrap().snapshot();
        assert_eq!(stats.page_cache_hits, 2);
        assert_eq!(stats.page_cache_misses, 10);
        assert_eq!(stats.page_cache_evictions, 2);
        assert_eq!(stats.page_cache_read_fill_evictions, 1);
        assert_eq!(stats.page_cache_write_fill_evictions, 1);
        assert_eq!(stats.file_reads, 10);
        assert_eq!(stats.file_writes, 2);
        assert_eq!(stats.words_read, 10);
        assert_eq!(stats.words_written, 2);
        assert!((stats.page_cache_hit_rate() - 2.0 / 12.0).abs() < 1e-9);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_generation_advances_on_every_write() {
        let vec = VecBackend::new(16);
        assert_eq!(vec.write_generation(), Some(0));
        vec.write_word(3, &[1u8; WORD_BYTES]).unwrap();
        vec.write_word(4, &[2u8; WORD_BYTES]).unwrap();
        assert_eq!(vec.write_generation(), Some(2));
        // Reads never advance it; failed writes don't either.
        vec.read_word(3).unwrap();
        assert!(vec.write_word(99, &[0u8; WORD_BYTES]).is_err());
        assert_eq!(vec.write_generation(), Some(2));

        let path = temp_path("generation");
        let file = FileBackend::create(&path, 16).unwrap();
        assert_eq!(file.write_generation(), Some(0));
        file.write_word(0, &[3u8; WORD_BYTES]).unwrap();
        assert_eq!(file.write_generation(), Some(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn vec_backend_counts_words() {
        let store = VecBackend::new(8);
        store.write_word(0, &[1u8; WORD_BYTES]).unwrap();
        store.read_word(0).unwrap();
        store.read_word(1).unwrap();
        let stats = store.store_metrics().unwrap().snapshot();
        assert_eq!(stats.words_written, 1);
        assert_eq!(stats.words_read, 2);
        assert_eq!(stats.file_reads, 0);
    }

    #[test]
    fn open_rejects_torn_lengths() {
        let path = temp_path("torn");
        std::fs::write(&path, [0u8; WORD_BYTES + 1]).unwrap();
        assert!(FileBackend::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
