//! Per-tenant observability: bounded-cardinality attribution over one
//! shared [`EncryptionLayer`](crate::EncryptionLayer).
//!
//! A layer serving N tenants answers three questions no aggregate metric
//! can: *whose* p99 regressed, *which* crypto stage did it, and *whose*
//! pages does an observer of the store see most. [`TenantTelemetry`] is
//! the recording surface:
//!
//! * Tenants own disjoint page ranges ([`TenantRanges`]), so every page
//!   maps to its tenant with one subtract-and-divide — the layer's hot
//!   paths attribute cache results and ciphertext observations with an
//!   array index, no hashing.
//! * Cardinality is bounded by a [`TenantScope`]: the expected-heaviest
//!   `K` tenants (the traffic composer knows its own popularity
//!   distribution) get exact slots, everyone else folds into the
//!   [`OTHER_TENANT`] rollup row. A [`TenantSketch`] ranks tenants
//!   *empirically* in parallel, so a mis-primed scope still surfaces
//!   heavy hitters hiding inside `__other__`.
//! * Per-tenant SLOs ([`SloSpec`], e.g. `read-p99=120us`) are scored on
//!   every driver-recorded op; windowed burn rates follow the classic
//!   error-budget form `bad_fraction / (1 - quantile)`.
//! * Noisy-neighbor attribution: sampled page visits report their
//!   measured segments (lock wait, tree walk, store I/O, MAC, pad,
//!   commit — the same marks span tracing reads), summed per tenant as
//!   time-share blame; a sampled visit past the tail cutoff also counts
//!   its *dominant* segment, so "tenant-3's tail is lock waits behind
//!   tenant-0's page rolls" is a table lookup.
//!
//! Like [`MemMetrics`](crate::MemMetrics) and the flight recorder, the
//! type follows the telemetry twin pattern: under `telemetry-off` a
//! stub with the identical API compiles every probe to nothing.

use clme_types::json::JsonValue;

#[cfg(not(feature = "telemetry-off"))]
use std::collections::HashMap;
#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::Mutex;

#[cfg(not(feature = "telemetry-off"))]
use clme_obs::registry::ShardedHistogram;
#[cfg(not(feature = "telemetry-off"))]
use clme_obs::tenant::{tenant_label, HeavyHitter, TenantScope, TenantSketch, OTHER_TENANT};
use clme_obs::{Log2Histogram, MetricKind, Sample, SampleValue};

/// How many rolled burn windows each SLO retains per tenant.
pub const BURN_WINDOWS: usize = 8;

/// Tail cutoff when no SLO supplies one: a visit this slow is worth a
/// dominant-cause count even without an objective (100 µs, the same
/// order as [`SLOW_LOCK_NS`](crate::SLOW_LOCK_NS)).
pub const DEFAULT_TAIL_CUTOFF_NS: u64 = 100_000;

/// Default number of exact tenant slots.
pub const DEFAULT_TENANT_TOP: usize = 8;

// ---------------------------------------------------------------------
// Always-compiled data types
// ---------------------------------------------------------------------

/// Disjoint, equal-sized per-tenant page ranges: tenant `t` owns pages
/// `[first_page + t * pages_per, first_page + (t + 1) * pages_per)`.
/// Because ranges are arithmetic, `page -> tenant` is one subtraction
/// and one division — cheap enough for the layer's per-page hot paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantRanges {
    /// Number of tenants.
    pub count: u64,
    /// First page of tenant 0.
    pub first_page: u64,
    /// Pages per tenant.
    pub pages_per: u64,
}

impl TenantRanges {
    /// The tenant owning `page`, or `None` outside every range.
    #[inline]
    pub fn tenant_of_page(&self, page: u64) -> Option<u64> {
        if self.pages_per == 0 || page < self.first_page {
            return None;
        }
        let t = (page - self.first_page) / self.pages_per;
        (t < self.count).then_some(t)
    }

    /// First page of tenant `t`.
    pub fn first_page_of(&self, t: u64) -> u64 {
        self.first_page + t * self.pages_per
    }

    /// Pages spanned by all tenants together.
    pub fn total_pages(&self) -> u64 {
        self.count * self.pages_per
    }

    /// The compact descriptor stored in `.clmedump` workload JSON so a
    /// post-mortem can name the suspect tenant without a page table.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::Num(self.count as f64)),
            ("first_page".into(), JsonValue::Num(self.first_page as f64)),
            ("pages_per".into(), JsonValue::Num(self.pages_per as f64)),
        ])
    }

    /// Inverse of [`TenantRanges::to_json`].
    pub fn from_json(v: &JsonValue) -> Option<TenantRanges> {
        let num = |k: &str| v.get(k).and_then(JsonValue::as_f64).map(|n| n as u64);
        Some(TenantRanges {
            count: num("count")?,
            first_page: num("first_page")?,
            pages_per: num("pages_per")?,
        })
    }
}

/// Where a tenant's visit time went. The vocabulary of the per-tenant
/// blame tables; every cause maps to marks the layer already measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum TailCause {
    /// Shard-lock wait — the noisy-neighbor signature.
    Lock = 0,
    /// Integrity-tree walk / page verification.
    TreeWalk = 1,
    /// Backing-store word I/O.
    Store = 2,
    /// MAC verification (including page-roll neighbour verifies).
    Mac = 3,
    /// AES pad generation (CTR batch or XTS).
    Pad = 4,
    /// Metadata commit (counter block + tree reseal).
    Commit = 5,
}

/// Number of [`TailCause`]s.
pub const TAIL_CAUSES: usize = 6;

impl TailCause {
    /// All causes, discriminant order.
    pub const ALL: [TailCause; TAIL_CAUSES] = [
        TailCause::Lock,
        TailCause::TreeWalk,
        TailCause::Store,
        TailCause::Mac,
        TailCause::Pad,
        TailCause::Commit,
    ];

    /// Stable lower-case name (JSON key and Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            TailCause::Lock => "lock",
            TailCause::TreeWalk => "tree_walk",
            TailCause::Store => "store",
            TailCause::Mac => "mac",
            TailCause::Pad => "pad",
            TailCause::Commit => "commit",
        }
    }
}

/// Measured nanosecond segments of one sampled page visit, by
/// [`TailCause`] discriminant. Segments the visit did not exercise stay
/// zero.
pub type VisitSegments = [u64; TAIL_CAUSES];

/// One per-tenant latency objective, e.g. "99% of reads under 120 µs".
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// `true` for write-op objectives, `false` for reads.
    pub write: bool,
    /// Objective quantile in `(0, 1)`, e.g. `0.99`.
    pub quantile: f64,
    /// Latency threshold in nanoseconds.
    pub threshold_ns: u64,
    /// The spec as parsed, used as the `slo` label value.
    pub label: String,
}

impl SloSpec {
    /// Parses one spec of the form `OP-pQQ=DURATION`, e.g.
    /// `read-p99=120us`, `write-p95=1ms`, `read-p999=250000ns`.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let (lhs, rhs) = spec
            .split_once('=')
            .ok_or_else(|| format!("slo `{spec}`: expected OP-pQQ=DURATION"))?;
        let (op, quant) = lhs
            .split_once("-p")
            .ok_or_else(|| format!("slo `{spec}`: expected read-pQQ or write-pQQ"))?;
        let write = match op {
            "read" => false,
            "write" => true,
            other => return Err(format!("slo `{spec}`: unknown op `{other}`")),
        };
        if quant.is_empty() || quant.len() > 3 || !quant.bytes().all(|b| b.is_ascii_digit()) {
            return Err(format!("slo `{spec}`: bad quantile `p{quant}`"));
        }
        let quantile = quant.parse::<f64>().unwrap() / 10f64.powi(quant.len() as i32);
        if !(0.0..1.0).contains(&quantile) || quantile == 0.0 {
            return Err(format!("slo `{spec}`: quantile must be in (0, 1)"));
        }
        let threshold_ns = parse_duration_ns(rhs)
            .ok_or_else(|| format!("slo `{spec}`: bad duration `{rhs}` (use ns/us/ms)"))?;
        if threshold_ns == 0 {
            return Err(format!("slo `{spec}`: threshold must be positive"));
        }
        Ok(SloSpec {
            write,
            quantile,
            threshold_ns,
            label: spec.to_string(),
        })
    }

    /// Parses a comma-separated list of specs.
    pub fn parse_list(list: &str) -> Result<Vec<SloSpec>, String> {
        list.split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| SloSpec::parse(s.trim()))
            .collect()
    }

    /// Burn rate of an error budget: the fraction of ops over threshold
    /// divided by the budget `1 - quantile`. 1.0 means the budget is
    /// consumed exactly as fast as it accrues.
    pub fn burn(&self, good: u64, bad: u64) -> f64 {
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / (1.0 - self.quantile)
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("label".into(), JsonValue::Str(self.label.clone())),
            (
                "op".into(),
                JsonValue::Str(if self.write { "write" } else { "read" }.into()),
            ),
            ("quantile".into(), JsonValue::Num(self.quantile)),
            ("threshold_ns".into(), JsonValue::Num(self.threshold_ns as f64)),
        ])
    }
}

fn parse_duration_ns(s: &str) -> Option<u64> {
    let (digits, scale) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    digits.parse::<u64>().ok()?.checked_mul(scale)
}

/// How the verified-page cache served a tenant's page visit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantServe {
    /// Fully served from the cache.
    Hit = 0,
    /// Counter block reused, some blocks fetched.
    Partial = 1,
    /// Full verification chain ran.
    Miss = 2,
}

/// One SLO's score for one tenant.
#[derive(Clone, Debug, Default)]
pub struct SloRow {
    /// The spec's label.
    pub label: String,
    /// Ops that met the objective, cumulative.
    pub good: u64,
    /// Ops over threshold, cumulative.
    pub bad: u64,
    /// Cumulative burn rate.
    pub burn: f64,
    /// Burn rate per retained window, oldest first (the last entry is
    /// the in-progress window).
    pub window_burns: Vec<f64>,
}

/// One tenant's row of a [`TenantSnapshot`]. The last row of a snapshot
/// is always the [`OTHER_TENANT`] rollup.
#[derive(Clone, Debug, Default)]
pub struct TenantRow {
    /// Tenant id; `None` for the rollup row.
    pub id: Option<u64>,
    /// Display label (escaped only at the Prometheus writer).
    pub label: String,
    /// Driver-recorded read-op latencies.
    pub read: Log2Histogram,
    /// Driver-recorded write-op latencies.
    pub write: Log2Histogram,
    /// Read / write ops recorded.
    pub ops: [u64; 2],
    /// Blocks moved by those ops (read / write).
    pub blocks: [u64; 2],
    /// Cache full hits / partial hits / misses on this tenant's pages.
    pub cache: [u64; 3],
    /// Ciphertext writes an observer saw land on this tenant's pages.
    pub ciphertext_writes: u64,
    /// Ciphertext writes under the *current* master key (key dwell in
    /// write-exposure terms; resets on rekey).
    pub key_exposure_writes: u64,
    /// Sampled time-share blame, ns summed per [`TailCause`].
    pub stage_ns: [u64; TAIL_CAUSES],
    /// Sampled tail visits (past the cutoff) per dominant cause.
    pub tail: [u64; TAIL_CAUSES],
    /// SLO scores, one per configured spec.
    pub slo: Vec<SloRow>,
}

impl TenantRow {
    /// Total sampled tail visits.
    pub fn tail_total(&self) -> u64 {
        self.tail.iter().sum()
    }

    /// The dominant tail cause, if any tail visit was recorded.
    pub fn dominant_tail(&self) -> Option<TailCause> {
        let (i, &n) = self
            .tail
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))?;
        (n > 0).then_some(TailCause::ALL[i])
    }
}

/// Point-in-time copy of everything [`TenantTelemetry`] tracks.
#[derive(Clone, Debug, Default)]
pub struct TenantSnapshot {
    /// Total tenants composed over the layer.
    pub tenant_count: u64,
    /// Exact slots configured.
    pub top_k: usize,
    /// Configured SLOs.
    pub slo: Vec<SloSpec>,
    /// Exact rows in slot order, then the `__other__` rollup row.
    pub rows: Vec<TenantRow>,
    /// Ops that folded into the rollup.
    pub folded_ops: u64,
    /// Sketch-ranked heavy hitters that do *not* own an exact slot —
    /// heavy traffic hiding inside `__other__` (empty when priming was
    /// right).
    pub hot_unadmitted: Vec<(u64, u64)>,
}

fn hist_json(h: &Log2Histogram) -> JsonValue {
    let ns = |ps: u64| ps as f64 / 1000.0;
    JsonValue::Obj(vec![
        ("count".into(), JsonValue::Num(h.count() as f64)),
        ("p50_ns".into(), JsonValue::Num(ns(h.percentile_ps(0.50)))),
        ("p95_ns".into(), JsonValue::Num(ns(h.percentile_ps(0.95)))),
        ("p99_ns".into(), JsonValue::Num(ns(h.percentile_ps(0.99)))),
        ("mean_ns".into(), JsonValue::Num(h.mean_ps() / 1000.0)),
        ("max_ns".into(), JsonValue::Num(ns(h.max_ps()))),
    ])
}

impl TenantSnapshot {
    /// The `tenants` object of `--stats-json` / `BENCH_mem.json`.
    pub fn to_json(&self) -> JsonValue {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let stage = JsonValue::Obj(
                    TailCause::ALL
                        .iter()
                        .map(|&c| {
                            (
                                c.name().to_string(),
                                JsonValue::Num(r.stage_ns[c as usize] as f64),
                            )
                        })
                        .collect(),
                );
                let mut tail: Vec<(String, JsonValue)> = vec![(
                    "total".into(),
                    JsonValue::Num(r.tail_total() as f64),
                )];
                for c in TailCause::ALL {
                    tail.push((c.name().into(), JsonValue::Num(r.tail[c as usize] as f64)));
                }
                tail.push((
                    "dominant".into(),
                    match r.dominant_tail() {
                        Some(c) => JsonValue::Str(c.name().into()),
                        None => JsonValue::Null,
                    },
                ));
                let slo = r
                    .slo
                    .iter()
                    .map(|s| {
                        JsonValue::Obj(vec![
                            ("label".into(), JsonValue::Str(s.label.clone())),
                            ("good".into(), JsonValue::Num(s.good as f64)),
                            ("bad".into(), JsonValue::Num(s.bad as f64)),
                            ("burn".into(), JsonValue::Num(s.burn)),
                            (
                                "window_burns".into(),
                                JsonValue::Arr(
                                    s.window_burns.iter().map(|&b| JsonValue::Num(b)).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                JsonValue::Obj(vec![
                    ("tenant".into(), JsonValue::Str(r.label.clone())),
                    (
                        "id".into(),
                        match r.id {
                            Some(id) => JsonValue::Num(id as f64),
                            None => JsonValue::Null,
                        },
                    ),
                    ("read".into(), hist_json(&r.read)),
                    ("write".into(), hist_json(&r.write)),
                    (
                        "ops".into(),
                        JsonValue::Obj(vec![
                            ("read".into(), JsonValue::Num(r.ops[0] as f64)),
                            ("write".into(), JsonValue::Num(r.ops[1] as f64)),
                        ]),
                    ),
                    (
                        "blocks".into(),
                        JsonValue::Obj(vec![
                            ("read".into(), JsonValue::Num(r.blocks[0] as f64)),
                            ("write".into(), JsonValue::Num(r.blocks[1] as f64)),
                        ]),
                    ),
                    (
                        "cache".into(),
                        JsonValue::Obj(vec![
                            ("hits".into(), JsonValue::Num(r.cache[0] as f64)),
                            ("partial_hits".into(), JsonValue::Num(r.cache[1] as f64)),
                            ("misses".into(), JsonValue::Num(r.cache[2] as f64)),
                        ]),
                    ),
                    (
                        "ciphertext_writes".into(),
                        JsonValue::Num(r.ciphertext_writes as f64),
                    ),
                    (
                        "key_exposure_writes".into(),
                        JsonValue::Num(r.key_exposure_writes as f64),
                    ),
                    ("stage_ns".into(), stage),
                    ("tail".into(), JsonValue::Obj(tail)),
                    ("slo".into(), JsonValue::Arr(slo)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::Num(self.tenant_count as f64)),
            ("top_k".into(), JsonValue::Num(self.top_k as f64)),
            (
                "slo".into(),
                JsonValue::Arr(self.slo.iter().map(SloSpec::to_json).collect()),
            ),
            ("folded_ops".into(), JsonValue::Num(self.folded_ops as f64)),
            (
                "hot_unadmitted".into(),
                JsonValue::Arr(
                    self.hot_unadmitted
                        .iter()
                        .map(|&(id, count)| {
                            JsonValue::Obj(vec![
                                ("id".into(), JsonValue::Num(id as f64)),
                                ("count".into(), JsonValue::Num(count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("rows".into(), JsonValue::Arr(rows)),
        ])
    }

    /// Per-tenant Prometheus families. Tenant label *values* pass
    /// through [`clme_obs::prom::render`]'s escaping, so hostile display
    /// names cannot break the exposition format.
    pub fn prom_samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let sample = |name: &str, help: &str, kind, labels: Vec<(String, String)>, value| Sample {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels,
            value,
        };
        let t = |r: &TenantRow| ("tenant".to_string(), r.label.clone());
        for r in &self.rows {
            for (op, i) in [("read", 0usize), ("write", 1usize)] {
                out.push(sample(
                    "clme_tenant_ops_total",
                    "Driver-recorded ops per tenant.",
                    MetricKind::Counter,
                    vec![t(r), ("op".into(), op.into())],
                    SampleValue::Counter(r.ops[i]),
                ));
                out.push(sample(
                    "clme_tenant_blocks_total",
                    "Blocks moved per tenant.",
                    MetricKind::Counter,
                    vec![t(r), ("op".into(), op.into())],
                    SampleValue::Counter(r.blocks[i]),
                ));
                out.push(sample(
                    "clme_tenant_op_latency_ps",
                    "Per-tenant op latency.",
                    MetricKind::Histogram,
                    vec![t(r), ("op".into(), op.into())],
                    SampleValue::Histogram(if i == 0 { r.read.clone() } else { r.write.clone() }),
                ));
            }
            for (result, i) in [("hit", 0usize), ("partial", 1), ("miss", 2)] {
                out.push(sample(
                    "clme_tenant_cache_total",
                    "Verified-page cache results on the tenant's pages.",
                    MetricKind::Counter,
                    vec![t(r), ("result".into(), result.into())],
                    SampleValue::Counter(r.cache[i]),
                ));
            }
            out.push(sample(
                "clme_tenant_ciphertext_writes_total",
                "Ciphertext writes observable on the tenant's pages.",
                MetricKind::Counter,
                vec![t(r)],
                SampleValue::Counter(r.ciphertext_writes),
            ));
            out.push(sample(
                "clme_tenant_key_exposure_writes",
                "Ciphertext writes under the current master key.",
                MetricKind::Gauge,
                vec![t(r)],
                SampleValue::Gauge(r.key_exposure_writes),
            ));
            for c in TailCause::ALL {
                out.push(sample(
                    "clme_tenant_stage_ns_total",
                    "Sampled visit time per cause, nanoseconds.",
                    MetricKind::Counter,
                    vec![t(r), ("cause".into(), c.name().into())],
                    SampleValue::Counter(r.stage_ns[c as usize]),
                ));
                out.push(sample(
                    "clme_tenant_tail_total",
                    "Sampled tail visits by dominant cause.",
                    MetricKind::Counter,
                    vec![t(r), ("cause".into(), c.name().into())],
                    SampleValue::Counter(r.tail[c as usize]),
                ));
            }
            for s in &r.slo {
                let labels = |extra: &str| {
                    vec![t(r), ("slo".into(), extra.to_string())]
                };
                out.push(sample(
                    "clme_tenant_slo_good_total",
                    "Ops meeting the objective.",
                    MetricKind::Counter,
                    labels(&s.label),
                    SampleValue::Counter(s.good),
                ));
                out.push(sample(
                    "clme_tenant_slo_bad_total",
                    "Ops over the objective threshold.",
                    MetricKind::Counter,
                    labels(&s.label),
                    SampleValue::Counter(s.bad),
                ));
                out.push(sample(
                    "clme_tenant_slo_burn_milli",
                    "Cumulative burn rate x1000.",
                    MetricKind::Gauge,
                    labels(&s.label),
                    SampleValue::Gauge((s.burn * 1000.0) as u64),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Live telemetry — real implementation
// ---------------------------------------------------------------------

#[cfg(not(feature = "telemetry-off"))]
struct TenantSlot {
    read: ShardedHistogram,
    write: ShardedHistogram,
    ops: [AtomicU64; 2],
    blocks: [AtomicU64; 2],
    cache: [AtomicU64; 3],
    observed: AtomicU64,
    exposure: AtomicU64,
    stage_ns: [AtomicU64; TAIL_CAUSES],
    tail: [AtomicU64; TAIL_CAUSES],
    /// Cumulative per-SLO good/bad.
    slo_good: Vec<AtomicU64>,
    slo_bad: Vec<AtomicU64>,
    /// In-progress window per SLO.
    win_good: Vec<AtomicU64>,
    win_bad: Vec<AtomicU64>,
}

#[cfg(not(feature = "telemetry-off"))]
impl TenantSlot {
    fn new(slos: usize) -> TenantSlot {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        TenantSlot {
            read: ShardedHistogram::new(),
            write: ShardedHistogram::new(),
            ops: Default::default(),
            blocks: Default::default(),
            cache: Default::default(),
            observed: AtomicU64::new(0),
            exposure: AtomicU64::new(0),
            stage_ns: Default::default(),
            tail: Default::default(),
            slo_good: zeros(slos),
            slo_bad: zeros(slos),
            win_good: zeros(slos),
            win_bad: zeros(slos),
        }
    }
}

/// The per-tenant recording surface. One per layer, installed with
/// [`EncryptionLayer::install_tenants`](crate::EncryptionLayer::install_tenants);
/// shared with the traffic driver, which records op latencies and SLO
/// scores exhaustively while the layer attributes cache results,
/// ciphertext observations, and sampled stage blame by page.
#[cfg(not(feature = "telemetry-off"))]
pub struct TenantTelemetry {
    ranges: TenantRanges,
    scope: TenantScope,
    sketch: TenantSketch,
    /// Tenant ids owning exact slots, slot order (frozen at build).
    admitted: Vec<u64>,
    /// `page - ranges.first_page` pre-division slot table is not needed:
    /// tenant-of-page is arithmetic, then this maps tenant -> slot.
    /// `u32::MAX` marks folded tenants.
    tenant_slots: Vec<u32>,
    slos: Vec<SloSpec>,
    tail_cutoff_ns: u64,
    /// Exact slots then the `__other__` rollup (last).
    slots: Vec<TenantSlot>,
    folded_ops: AtomicU64,
    /// Rolled burn-window history: `[slot][slo]` ring, oldest first.
    windows: Mutex<Vec<Vec<Vec<f64>>>>,
    /// Display-name overrides, for operators naming tenants.
    names: Mutex<HashMap<u64, String>>,
}

#[cfg(not(feature = "telemetry-off"))]
impl TenantTelemetry {
    /// Builds telemetry for `ranges.count` tenants with `top_k` exact
    /// slots, primed with `heaviest` (the composer's expected-heaviest
    /// tenants, best first). Admission freezes here: tenants outside
    /// the primed set fold into `__other__`, and the sketch reports any
    /// that turn out heavy.
    pub fn new(
        ranges: TenantRanges,
        top_k: usize,
        heaviest: &[u64],
        slos: Vec<SloSpec>,
    ) -> TenantTelemetry {
        let top_k = top_k.max(1);
        let scope = TenantScope::new(top_k);
        for &id in heaviest {
            if scope.prime(id).is_none() {
                break;
            }
        }
        let admitted = scope.admitted();
        let mut tenant_slots = vec![u32::MAX; ranges.count as usize];
        for (slot, &id) in admitted.iter().enumerate() {
            if let Some(s) = tenant_slots.get_mut(id as usize) {
                *s = slot as u32;
            }
        }
        let tail_cutoff_ns = slos
            .iter()
            .map(|s| s.threshold_ns)
            .min()
            .unwrap_or(DEFAULT_TAIL_CUTOFF_NS);
        let n_slots = admitted.len() + 1;
        let slots = (0..n_slots).map(|_| TenantSlot::new(slos.len())).collect();
        let windows = (0..n_slots)
            .map(|_| vec![Vec::new(); slos.len()])
            .collect();
        TenantTelemetry {
            ranges,
            scope,
            sketch: TenantSketch::new((top_k * 2).max(16)),
            admitted,
            tenant_slots,
            slos,
            tail_cutoff_ns,
            slots,
            folded_ops: AtomicU64::new(0),
            windows: Mutex::new(windows),
            names: Mutex::new(HashMap::new()),
        }
    }

    /// The page ranges this telemetry attributes by.
    pub fn ranges(&self) -> TenantRanges {
        self.ranges
    }

    /// Configured SLOs.
    pub fn slos(&self) -> &[SloSpec] {
        &self.slos
    }

    /// Visits at or past this many nanoseconds count a dominant tail
    /// cause (the tightest SLO threshold, or the default cutoff).
    pub fn tail_cutoff_ns(&self) -> u64 {
        self.tail_cutoff_ns
    }

    /// Overrides a tenant's display label. Values are escaped by the
    /// Prometheus writer at render time, so hostile names are safe.
    pub fn set_label(&self, id: u64, name: &str) {
        self.names
            .lock()
            .expect("tenant names poisoned")
            .insert(id, name.to_string());
    }

    #[inline]
    fn slot_of_tenant(&self, id: u64) -> usize {
        match self.tenant_slots.get(id as usize) {
            Some(&s) if s != u32::MAX => s as usize,
            _ => self.slots.len() - 1,
        }
    }

    #[inline]
    fn slot_of_page(&self, page: u64) -> Option<usize> {
        self.ranges
            .tenant_of_page(page)
            .map(|t| self.slot_of_tenant(t))
    }

    /// Driver hook: one completed batch for `tenant`. Records the op
    /// latency exhaustively, scores every matching SLO, and feeds the
    /// heavy-hitter sketch (weighted by blocks). `tenant` doubles as
    /// the sketch's writer-stream id, so per-tenant driver threads stay
    /// deterministic.
    pub fn record_op(&self, tenant: u64, write: bool, latency_ns: u64, blocks: u64) {
        self.sketch
            .observe_n(tenant as usize, tenant, blocks.max(1));
        let slot_idx = self.slot_of_tenant(tenant);
        if slot_idx == self.slots.len() - 1 {
            self.folded_ops.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[slot_idx];
        let op = write as usize;
        slot.ops[op].fetch_add(1, Ordering::Relaxed);
        slot.blocks[op].fetch_add(blocks, Ordering::Relaxed);
        let hist = if write { &slot.write } else { &slot.read };
        hist.record_ps(latency_ns.saturating_mul(1000));
        for (i, spec) in self.slos.iter().enumerate() {
            if spec.write != write {
                continue;
            }
            if latency_ns > spec.threshold_ns {
                slot.slo_bad[i].fetch_add(1, Ordering::Relaxed);
                slot.win_bad[i].fetch_add(1, Ordering::Relaxed);
            } else {
                slot.slo_good[i].fetch_add(1, Ordering::Relaxed);
                slot.win_good[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Layer hook: the verified-page cache served a visit to `page`.
    #[inline]
    pub fn page_served(&self, page: u64, serve: TenantServe) {
        if let Some(slot) = self.slot_of_page(page) {
            self.slots[slot].cache[serve as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Layer hook: `n` ciphertext writes landed on `page` — observable
    /// by anyone watching the store, and exposure accrued against the
    /// current master key.
    #[inline]
    pub fn ciphertext_writes(&self, page: u64, n: u64) {
        if let Some(slot) = self.slot_of_page(page) {
            self.slots[slot].observed.fetch_add(n, Ordering::Relaxed);
            self.slots[slot].exposure.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Layer hook: a sampled page visit measured `segs` nanosecond
    /// segments over `total_ns`. Segments accumulate as time-share
    /// blame; a visit past the tail cutoff also counts its dominant
    /// segment.
    pub fn visit_sample(&self, page: u64, total_ns: u64, segs: &VisitSegments) {
        let Some(slot_idx) = self.slot_of_page(page) else {
            return;
        };
        let slot = &self.slots[slot_idx];
        let mut dominant = 0usize;
        for (i, &ns) in segs.iter().enumerate() {
            if ns > 0 {
                slot.stage_ns[i].fetch_add(ns, Ordering::Relaxed);
            }
            if ns > segs[dominant] {
                dominant = i;
            }
        }
        if total_ns >= self.tail_cutoff_ns && segs[dominant] > 0 {
            slot.tail[dominant].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Layer hook: a rekey sweep completed — every key-exposure gauge
    /// resets, because the writes an observer collected were under the
    /// retired key.
    pub fn on_rekey(&self) {
        for slot in &self.slots {
            slot.exposure.store(0, Ordering::Relaxed);
        }
    }

    /// Driver hook: closes the in-progress SLO window for every tenant
    /// and appends its burn rate to the retained ring (capacity
    /// [`BURN_WINDOWS`]).
    pub fn roll_windows(&self) {
        let mut windows = self.windows.lock().expect("tenant windows poisoned");
        for (slot_idx, slot) in self.slots.iter().enumerate() {
            for (i, spec) in self.slos.iter().enumerate() {
                let good = slot.win_good[i].swap(0, Ordering::Relaxed);
                let bad = slot.win_bad[i].swap(0, Ordering::Relaxed);
                let ring = &mut windows[slot_idx][i];
                ring.push(spec.burn(good, bad));
                if ring.len() > BURN_WINDOWS {
                    let drop = ring.len() - BURN_WINDOWS;
                    ring.drain(..drop);
                }
            }
        }
    }

    /// Point-in-time copy of every per-tenant series.
    pub fn snapshot(&self) -> TenantSnapshot {
        let names = self.names.lock().expect("tenant names poisoned");
        let windows = self.windows.lock().expect("tenant windows poisoned");
        let rows = self
            .slots
            .iter()
            .enumerate()
            .map(|(slot_idx, slot)| {
                let id = self.admitted.get(slot_idx).copied();
                let label = match id {
                    Some(id) => names
                        .get(&id)
                        .cloned()
                        .unwrap_or_else(|| tenant_label(Some(id))),
                    None => OTHER_TENANT.to_string(),
                };
                let slo = self
                    .slos
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| {
                        let good = slot.slo_good[i].load(Ordering::Relaxed);
                        let bad = slot.slo_bad[i].load(Ordering::Relaxed);
                        let mut window_burns = windows[slot_idx][i].clone();
                        // The in-progress window rides along so a
                        // snapshot before any roll still shows burn.
                        let wg = slot.win_good[i].load(Ordering::Relaxed);
                        let wb = slot.win_bad[i].load(Ordering::Relaxed);
                        if wg + wb > 0 {
                            window_burns.push(spec.burn(wg, wb));
                        }
                        SloRow {
                            label: spec.label.clone(),
                            good,
                            bad,
                            burn: spec.burn(good, bad),
                            window_burns,
                        }
                    })
                    .collect();
                let load = |a: &[AtomicU64]| -> Vec<u64> {
                    a.iter().map(|v| v.load(Ordering::Relaxed)).collect()
                };
                let arr6 = |a: &[AtomicU64; TAIL_CAUSES]| -> [u64; TAIL_CAUSES] {
                    core::array::from_fn(|i| a[i].load(Ordering::Relaxed))
                };
                let ops = load(&slot.ops);
                let blocks = load(&slot.blocks);
                let cache = load(&slot.cache);
                TenantRow {
                    id,
                    label,
                    read: slot.read.merge(),
                    write: slot.write.merge(),
                    ops: [ops[0], ops[1]],
                    blocks: [blocks[0], blocks[1]],
                    cache: [cache[0], cache[1], cache[2]],
                    ciphertext_writes: slot.observed.load(Ordering::Relaxed),
                    key_exposure_writes: slot.exposure.load(Ordering::Relaxed),
                    stage_ns: arr6(&slot.stage_ns),
                    tail: arr6(&slot.tail),
                    slo,
                }
            })
            .collect();
        let hot_unadmitted = self
            .sketch
            .merged_top(self.scope.cap())
            .into_iter()
            .filter(|h| !self.admitted.contains(&h.id))
            .map(|h: HeavyHitter| (h.id, h.count))
            .collect();
        TenantSnapshot {
            tenant_count: self.ranges.count,
            top_k: self.scope.cap(),
            slo: self.slos.clone(),
            rows,
            folded_ops: self.folded_ops.load(Ordering::Relaxed),
            hot_unadmitted,
        }
    }
}

// ---------------------------------------------------------------------
// telemetry-off — zero-cost no-op twin
// ---------------------------------------------------------------------

/// No-op twin: every probe compiles away, snapshots come back empty.
#[cfg(feature = "telemetry-off")]
pub struct TenantTelemetry {
    ranges: TenantRanges,
}

#[cfg(feature = "telemetry-off")]
impl TenantTelemetry {
    /// Builds the stub (slot/SLO configuration ignored).
    pub fn new(
        ranges: TenantRanges,
        _top_k: usize,
        _heaviest: &[u64],
        _slos: Vec<SloSpec>,
    ) -> TenantTelemetry {
        TenantTelemetry { ranges }
    }

    /// The page ranges this telemetry attributes by.
    pub fn ranges(&self) -> TenantRanges {
        self.ranges
    }

    /// Always empty.
    pub fn slos(&self) -> &[SloSpec] {
        &[]
    }

    /// The default cutoff.
    pub fn tail_cutoff_ns(&self) -> u64 {
        DEFAULT_TAIL_CUTOFF_NS
    }

    /// No-op.
    pub fn set_label(&self, _id: u64, _name: &str) {}
    /// No-op.
    #[inline(always)]
    pub fn record_op(&self, _tenant: u64, _write: bool, _latency_ns: u64, _blocks: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn page_served(&self, _page: u64, _serve: TenantServe) {}
    /// No-op.
    #[inline(always)]
    pub fn ciphertext_writes(&self, _page: u64, _n: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn visit_sample(&self, _page: u64, _total_ns: u64, _segs: &VisitSegments) {}
    /// No-op.
    pub fn on_rekey(&self) {}
    /// No-op.
    pub fn roll_windows(&self) {}
    /// Always empty.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            tenant_count: self.ranges.count,
            ..TenantSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_map_pages_arithmetically() {
        let r = TenantRanges {
            count: 4,
            first_page: 2,
            pages_per: 3,
        };
        assert_eq!(r.tenant_of_page(0), None);
        assert_eq!(r.tenant_of_page(2), Some(0));
        assert_eq!(r.tenant_of_page(4), Some(0));
        assert_eq!(r.tenant_of_page(5), Some(1));
        assert_eq!(r.tenant_of_page(13), Some(3));
        assert_eq!(r.tenant_of_page(14), None);
        assert_eq!(r.first_page_of(2), 8);
        assert_eq!(r.total_pages(), 12);
        let back = TenantRanges::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn slo_specs_parse_and_reject() {
        let s = SloSpec::parse("read-p99=120us").unwrap();
        assert!(!s.write);
        assert!((s.quantile - 0.99).abs() < 1e-12);
        assert_eq!(s.threshold_ns, 120_000);
        assert_eq!(s.label, "read-p99=120us");
        let s = SloSpec::parse("write-p95=1ms").unwrap();
        assert!(s.write);
        assert!((s.quantile - 0.95).abs() < 1e-12);
        assert_eq!(s.threshold_ns, 1_000_000);
        let s = SloSpec::parse("read-p999=250ns").unwrap();
        assert!((s.quantile - 0.999).abs() < 1e-12);
        let list = SloSpec::parse_list("read-p99=120us, write-p99=1ms").unwrap();
        assert_eq!(list.len(), 2);
        for bad in [
            "p99=120us",
            "read-p99",
            "scan-p99=1ms",
            "read-p0=1ms",
            "read-pxx=1ms",
            "read-p99=fast",
            "read-p99=0ns",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let s = SloSpec::parse("read-p99=1us").unwrap();
        assert_eq!(s.burn(0, 0), 0.0);
        // 1% bad at a p99 objective burns exactly 1.0.
        assert!((s.burn(99, 1) - 1.0).abs() < 1e-12);
        // 10% bad burns 10x.
        assert!((s.burn(90, 10) - 10.0).abs() < 1e-12);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn record_op_fills_slots_and_folds_tail() {
        let ranges = TenantRanges {
            count: 10,
            first_page: 0,
            pages_per: 2,
        };
        let slos = SloSpec::parse_list("read-p99=1us").unwrap();
        let t = TenantTelemetry::new(ranges, 2, &[7, 3], slos);
        t.record_op(7, false, 500, 64); // meets the objective
        t.record_op(7, false, 2_000, 64); // over threshold
        t.record_op(3, true, 100, 32);
        t.record_op(9, false, 50, 16); // folds
        let snap = t.snapshot();
        assert_eq!(snap.rows.len(), 3);
        assert_eq!(snap.rows[0].id, Some(7));
        assert_eq!(snap.rows[0].label, "tenant-7");
        assert_eq!(snap.rows[0].ops, [2, 0]);
        assert_eq!(snap.rows[0].blocks, [128, 0]);
        assert_eq!(snap.rows[0].read.count(), 2);
        assert_eq!(snap.rows[0].slo[0].good, 1);
        assert_eq!(snap.rows[0].slo[0].bad, 1);
        assert_eq!(snap.rows[1].id, Some(3));
        assert_eq!(snap.rows[1].ops, [0, 1]);
        assert_eq!(snap.rows[1].write.count(), 1);
        assert_eq!(snap.rows[2].id, None);
        assert_eq!(snap.rows[2].label, OTHER_TENANT);
        assert_eq!(snap.rows[2].ops, [1, 0]);
        assert_eq!(snap.folded_ops, 1);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn page_hooks_attribute_by_range() {
        let ranges = TenantRanges {
            count: 3,
            first_page: 1,
            pages_per: 2,
        };
        let t = TenantTelemetry::new(ranges, 3, &[0, 1, 2], Vec::new());
        t.page_served(1, TenantServe::Hit); // tenant 0
        t.page_served(2, TenantServe::Miss); // tenant 0
        t.page_served(3, TenantServe::Partial); // tenant 1
        t.page_served(0, TenantServe::Hit); // outside every range
        t.ciphertext_writes(5, 4); // tenant 2
        t.ciphertext_writes(5, 1);
        let snap = t.snapshot();
        assert_eq!(snap.rows[0].cache, [1, 0, 1]);
        assert_eq!(snap.rows[1].cache, [0, 1, 0]);
        assert_eq!(snap.rows[2].ciphertext_writes, 5);
        assert_eq!(snap.rows[2].key_exposure_writes, 5);
        t.on_rekey();
        let snap = t.snapshot();
        assert_eq!(snap.rows[2].ciphertext_writes, 5, "observations persist");
        assert_eq!(snap.rows[2].key_exposure_writes, 0, "exposure resets");
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn visit_samples_blame_the_dominant_cause() {
        let ranges = TenantRanges {
            count: 2,
            first_page: 0,
            pages_per: 4,
        };
        let t = TenantTelemetry::new(ranges, 2, &[0, 1], Vec::new());
        let mut segs = [0u64; TAIL_CAUSES];
        segs[TailCause::Lock as usize] = 90_000;
        segs[TailCause::Mac as usize] = 20_000;
        // Past the default 100us cutoff: dominant cause is lock wait.
        t.visit_sample(0, 150_000, &segs);
        // Under the cutoff: blame sums accrue, tail count does not.
        t.visit_sample(0, 50_000, &segs);
        let snap = t.snapshot();
        let row = &snap.rows[0];
        assert_eq!(row.stage_ns[TailCause::Lock as usize], 180_000);
        assert_eq!(row.stage_ns[TailCause::Mac as usize], 40_000);
        assert_eq!(row.tail[TailCause::Lock as usize], 1);
        assert_eq!(row.tail_total(), 1);
        assert_eq!(row.dominant_tail(), Some(TailCause::Lock));
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn windows_roll_and_retain_burns() {
        let ranges = TenantRanges {
            count: 1,
            first_page: 0,
            pages_per: 1,
        };
        let slos = SloSpec::parse_list("read-p99=1us").unwrap();
        let t = TenantTelemetry::new(ranges, 1, &[0], slos);
        for round in 0..(BURN_WINDOWS + 2) {
            // Alternate clean and fully-burning windows.
            let ns = if round % 2 == 0 { 10 } else { 10_000 };
            for _ in 0..10 {
                t.record_op(0, false, ns, 1);
            }
            t.roll_windows();
        }
        let snap = t.snapshot();
        let slo = &snap.rows[0].slo[0];
        assert_eq!(slo.window_burns.len(), BURN_WINDOWS, "ring is bounded");
        // All-bad windows burn at 1/(1-0.99) = 100x budget.
        assert!(slo.window_burns.iter().any(|&b| b > 99.0));
        assert!(slo.window_burns.iter().any(|&b| b == 0.0));
        assert_eq!(slo.good + slo.bad, 10 * (BURN_WINDOWS as u64 + 2));
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn sketch_flags_unadmitted_heavy_hitters() {
        let ranges = TenantRanges {
            count: 100,
            first_page: 0,
            pages_per: 1,
        };
        // Primed with the wrong tenants: 0 and 1 get slots, but 50
        // carries the real load.
        let t = TenantTelemetry::new(ranges, 2, &[0, 1], Vec::new());
        for _ in 0..100 {
            t.record_op(50, false, 100, 64);
        }
        t.record_op(0, false, 100, 1);
        let snap = t.snapshot();
        assert!(
            snap.hot_unadmitted.iter().any(|&(id, _)| id == 50),
            "tenant 50 should surface from __other__: {:?}",
            snap.hot_unadmitted
        );
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn snapshot_json_and_prom_have_tenant_families() {
        let ranges = TenantRanges {
            count: 4,
            first_page: 0,
            pages_per: 2,
        };
        let slos = SloSpec::parse_list("read-p99=120us").unwrap();
        let t = TenantTelemetry::new(ranges, 2, &[1, 2], slos);
        t.record_op(1, false, 1_000, 64);
        t.record_op(2, true, 2_000, 64);
        let snap = t.snapshot();
        let json = snap.to_json().to_pretty();
        for key in [
            "\"top_k\"",
            "\"rows\"",
            "\"tenant-1\"",
            "\"__other__\"",
            "\"p99_ns\"",
            "\"stage_ns\"",
            "\"tail\"",
            "\"burn\"",
            "\"window_burns\"",
            "\"key_exposure_writes\"",
            "\"hot_unadmitted\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = clme_obs::prom::render(&snap.prom_samples());
        for family in [
            "clme_tenant_ops_total{tenant=\"tenant-1\",op=\"read\"} 1",
            "clme_tenant_blocks_total{tenant=\"tenant-1\",op=\"read\"} 64",
            "clme_tenant_cache_total",
            "clme_tenant_ciphertext_writes_total",
            "clme_tenant_key_exposure_writes",
            "clme_tenant_stage_ns_total",
            "clme_tenant_tail_total",
            "clme_tenant_slo_good_total",
            "clme_tenant_slo_burn_milli",
            "# TYPE clme_tenant_op_latency_ps histogram",
        ] {
            assert!(text.contains(family), "missing {family} in {text}");
        }
    }
}
