//! Post-mortem `.clmedump` bundles: the black box, written to disk.
//!
//! When an armed [`EncryptionLayer`](crate::EncryptionLayer) hits an
//! [`IntegrityError`](crate::IntegrityError) (or is told to dump on
//! exit), it snapshots the flight ring, the [`MemMetricsSnapshot`] delta
//! since arming, and its geometry/config into a [`DumpBundle`] and
//! writes it as deterministic JSON: stable key order, no wall-clock
//! timestamps, the seed and workload parameters a replay needs to
//! re-create the exact op window. `clme postmortem` renders bundles and
//! `--replay` re-runs them.
//!
//! The bundle is written with [`write_atomic`] (temp file + rename), so
//! a crash mid-dump can never leave a truncated artifact — the same
//! helper the CLI uses for its bench-history files.

use std::io;
use std::path::{Path, PathBuf};

use clme_obs::flight::{FlightEvent, FlightSnapshot};
use clme_types::json::{self, JsonValue};

use crate::error::{IntegrityError, TamperClass};
use crate::flight::FlightKind;
use crate::metrics::MemMetricsSnapshot;

/// Bundle format version. Bump on any incompatible shape change.
pub const DUMP_SCHEMA: u32 = 1;

/// What the CLI (or any embedder) tells the layer when arming a dump:
/// where to write, the workload seed, and an opaque workload description
/// the replayer interprets (op counts, tamper site, mode, ...).
#[derive(Clone, Debug)]
pub struct DumpContext {
    /// Destination path of the `.clmedump` bundle.
    pub path: PathBuf,
    /// Seed the workload derives all its randomness from.
    pub seed: u64,
    /// Replayer-defined workload description, stored verbatim.
    pub workload: JsonValue,
}

/// The monotonic counters a dump carries — the [`MemMetricsSnapshot`]
/// delta between arming and the dump trigger, minus the histograms
/// (whose timings are inherently nondeterministic and belong in the
/// stats artifact, not the forensic record).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DumpCounts {
    /// `batch_read` calls in the window.
    pub batch_reads: u64,
    /// `batch_write` calls in the window.
    pub batch_writes: u64,
    /// Blocks decrypted in the window.
    pub blocks_read: u64,
    /// Blocks encrypted in the window.
    pub blocks_written: u64,
    /// Integrity failures in the window.
    pub integrity_errors: u64,
    /// Page rolls in the window.
    pub page_rolls: u64,
    /// Ciphertext writes observed in the window.
    pub observed_writes: u64,
}

impl DumpCounts {
    /// Extracts the counters from a metrics delta.
    pub fn from_delta(delta: &MemMetricsSnapshot) -> DumpCounts {
        DumpCounts {
            batch_reads: delta.batch_reads,
            batch_writes: delta.batch_writes,
            blocks_read: delta.blocks_read,
            blocks_written: delta.blocks_written,
            integrity_errors: delta.integrity_errors,
            page_rolls: delta.page_rolls,
            observed_writes: delta.observed_writes_total,
        }
    }
}

/// One complete post-mortem bundle.
#[derive(Clone, Debug)]
pub struct DumpBundle {
    /// Format version ([`DUMP_SCHEMA`]).
    pub schema: u32,
    /// What caused the dump: `"integrity-error"` or `"exit"`.
    pub trigger: String,
    /// Backend class ([`StoreBackend::kind`](crate::StoreBackend::kind)).
    pub backend: String,
    /// Data blocks the layer manages.
    pub blocks: u64,
    /// Pages ([`Geometry::pages`](crate::Geometry::pages)).
    pub pages: u64,
    /// Integrity-tree levels.
    pub levels: u64,
    /// Stored words in the backend.
    pub total_words: u64,
    /// Page-shard lock count.
    pub shards: u64,
    /// Counter saturation point.
    pub saturation: u64,
    /// Workload seed (recorded losslessly as a hex string in JSON).
    pub seed: u64,
    /// Batches completed in the captured window (the op index at which
    /// the trigger fired).
    pub op_index: u64,
    /// The triggering integrity error, when there was one.
    pub error: Option<IntegrityError>,
    /// Counter deltas over the captured window.
    pub counts: DumpCounts,
    /// The flight ring's retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events the ring had already evicted.
    pub events_dropped: u64,
    /// Events ever recorded.
    pub events_recorded: u64,
    /// The embedder's workload description, verbatim.
    pub workload: JsonValue,
}

fn num(v: u64) -> JsonValue {
    JsonValue::Num(v as f64)
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing or non-numeric key: {key}"))
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string key: {key}"))
}

impl DumpBundle {
    /// Assembles a bundle from the layer's state at trigger time.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        trigger: &str,
        backend: &str,
        geo: &crate::geometry::Geometry,
        shards: u64,
        saturation: u64,
        ctx: &DumpContext,
        delta: &MemMetricsSnapshot,
        flight: FlightSnapshot,
        error: Option<IntegrityError>,
    ) -> DumpBundle {
        let counts = DumpCounts::from_delta(delta);
        DumpBundle {
            schema: DUMP_SCHEMA,
            trigger: trigger.to_string(),
            backend: backend.to_string(),
            blocks: geo.data_blocks(),
            pages: geo.pages(),
            levels: geo.levels() as u64,
            total_words: geo.total_words(),
            shards,
            saturation,
            seed: ctx.seed,
            op_index: counts.batch_reads + counts.batch_writes,
            error,
            counts,
            events: flight.events,
            events_dropped: flight.dropped,
            events_recorded: flight.recorded,
            workload: ctx.workload.clone(),
        }
    }

    /// Serializes the bundle. Byte-for-byte deterministic for a
    /// deterministic workload: insertion-ordered keys, no timestamps.
    pub fn to_json(&self) -> JsonValue {
        let error = match &self.error {
            None => JsonValue::Null,
            Some(e) => JsonValue::Obj(vec![
                ("addr".into(), num(e.addr)),
                ("class_code".into(), num(e.class.code() as u64)),
                ("class".into(), JsonValue::Str(e.class.name().into())),
                ("display".into(), JsonValue::Str(e.to_string())),
            ]),
        };
        let events: Vec<JsonValue> = self
            .events
            .iter()
            .map(|e| {
                let name = FlightKind::from_code(e.kind)
                    .map(FlightKind::name)
                    .unwrap_or("unknown");
                JsonValue::Obj(vec![
                    ("seq".into(), num(e.seq)),
                    ("kind".into(), num(e.kind as u64)),
                    ("name".into(), JsonValue::Str(name.into())),
                    ("a".into(), num(e.a)),
                    ("b".into(), num(e.b)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("schema".into(), num(self.schema as u64)),
            ("trigger".into(), JsonValue::Str(self.trigger.clone())),
            (
                "config".into(),
                JsonValue::Obj(vec![
                    ("backend".into(), JsonValue::Str(self.backend.clone())),
                    ("blocks".into(), num(self.blocks)),
                    ("pages".into(), num(self.pages)),
                    ("levels".into(), num(self.levels)),
                    ("total_words".into(), num(self.total_words)),
                    ("shards".into(), num(self.shards)),
                    ("saturation".into(), num(self.saturation)),
                    ("seed".into(), JsonValue::Str(format!("{:#018x}", self.seed))),
                ]),
            ),
            ("op_index".into(), num(self.op_index)),
            ("error".into(), error),
            (
                "counts".into(),
                JsonValue::Obj(vec![
                    ("batch_reads".into(), num(self.counts.batch_reads)),
                    ("batch_writes".into(), num(self.counts.batch_writes)),
                    ("blocks_read".into(), num(self.counts.blocks_read)),
                    ("blocks_written".into(), num(self.counts.blocks_written)),
                    ("integrity_errors".into(), num(self.counts.integrity_errors)),
                    ("page_rolls".into(), num(self.counts.page_rolls)),
                    ("observed_writes".into(), num(self.counts.observed_writes)),
                ]),
            ),
            (
                "flight".into(),
                JsonValue::Obj(vec![
                    ("recorded".into(), num(self.events_recorded)),
                    ("dropped".into(), num(self.events_dropped)),
                    ("events".into(), JsonValue::Arr(events)),
                ]),
            ),
            ("workload".into(), self.workload.clone()),
        ])
    }

    /// Parses a bundle back from JSON text, validating the schema.
    pub fn parse(text: &str) -> Result<DumpBundle, String> {
        let doc = json::parse(text)?;
        let schema = get_u64(&doc, "schema")? as u32;
        if schema != DUMP_SCHEMA {
            return Err(format!(
                "dump schema {schema} unsupported (this build reads {DUMP_SCHEMA})"
            ));
        }
        let config = doc
            .get("config")
            .ok_or_else(|| "missing key: config".to_string())?;
        let seed_text = get_str(config, "seed")?;
        let seed_digits = seed_text
            .strip_prefix("0x")
            .ok_or_else(|| format!("seed not hex: {seed_text}"))?;
        let seed =
            u64::from_str_radix(seed_digits, 16).map_err(|e| format!("bad seed: {e}"))?;
        let error = match doc.get("error") {
            None | Some(JsonValue::Null) => None,
            Some(e) => {
                let code = get_u64(e, "class_code")? as u16;
                let class = TamperClass::from_code(code)
                    .ok_or_else(|| format!("unknown tamper class code {code}"))?;
                Some(IntegrityError {
                    addr: get_u64(e, "addr")?,
                    class,
                })
            }
        };
        let counts_obj = doc
            .get("counts")
            .ok_or_else(|| "missing key: counts".to_string())?;
        let counts = DumpCounts {
            batch_reads: get_u64(counts_obj, "batch_reads")?,
            batch_writes: get_u64(counts_obj, "batch_writes")?,
            blocks_read: get_u64(counts_obj, "blocks_read")?,
            blocks_written: get_u64(counts_obj, "blocks_written")?,
            integrity_errors: get_u64(counts_obj, "integrity_errors")?,
            page_rolls: get_u64(counts_obj, "page_rolls")?,
            observed_writes: get_u64(counts_obj, "observed_writes")?,
        };
        let flight = doc
            .get("flight")
            .ok_or_else(|| "missing key: flight".to_string())?;
        let mut events = Vec::new();
        if let Some(JsonValue::Arr(items)) = flight.get("events") {
            for item in items {
                events.push(FlightEvent {
                    seq: get_u64(item, "seq")?,
                    kind: get_u64(item, "kind")? as u16,
                    a: get_u64(item, "a")?,
                    b: get_u64(item, "b")?,
                });
            }
        } else {
            return Err("missing key: flight.events".into());
        }
        Ok(DumpBundle {
            schema,
            trigger: get_str(&doc, "trigger")?.to_string(),
            backend: get_str(config, "backend")?.to_string(),
            blocks: get_u64(config, "blocks")?,
            pages: get_u64(config, "pages")?,
            levels: get_u64(config, "levels")?,
            total_words: get_u64(config, "total_words")?,
            shards: get_u64(config, "shards")?,
            saturation: get_u64(config, "saturation")?,
            seed,
            op_index: get_u64(&doc, "op_index")?,
            error,
            counts,
            events,
            events_dropped: get_u64(flight, "dropped")?,
            events_recorded: get_u64(flight, "recorded")?,
            workload: doc.get("workload").cloned().unwrap_or(JsonValue::Null),
        })
    }
}

/// Writes `text` to `path` atomically: a temp sibling file is written
/// in full, then renamed over the destination, so readers (and crashes)
/// only ever see the old complete artifact or the new complete one.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    if let Err(e) = std::fs::write(&tmp, text) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn sample_bundle() -> DumpBundle {
        let geo = Geometry::for_blocks(256);
        let ctx = DumpContext {
            path: PathBuf::from("unused.clmedump"),
            seed: 0x00C0_FFEE,
            workload: JsonValue::Obj(vec![(
                "mode".into(),
                JsonValue::Str("tamper".into()),
            )]),
        };
        let delta = MemMetricsSnapshot {
            batch_reads: 3,
            batch_writes: 17,
            blocks_read: 48,
            blocks_written: 1088,
            integrity_errors: 1,
            page_rolls: 2,
            observed_writes_total: 1090,
            ..MemMetricsSnapshot::default()
        };
        let flight = FlightSnapshot {
            events: vec![
                FlightEvent { seq: 5, kind: FlightKind::WritePage as u16, a: 1, b: 64 },
                FlightEvent { seq: 6, kind: FlightKind::IntegrityFail as u16, a: 70, b: 0 },
            ],
            dropped: 4,
            recorded: 6,
            capacity: 4096,
        };
        DumpBundle::assemble(
            "integrity-error",
            "vec",
            &geo,
            16,
            1 << 20,
            &ctx,
            &delta,
            flight,
            Some(IntegrityError {
                addr: 70,
                class: TamperClass::DataMac,
            }),
        )
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let bundle = sample_bundle();
        let text = bundle.to_json().to_pretty();
        let back = DumpBundle::parse(&text).unwrap();
        assert_eq!(back.schema, DUMP_SCHEMA);
        assert_eq!(back.trigger, "integrity-error");
        assert_eq!(back.backend, "vec");
        assert_eq!(back.blocks, 256);
        assert_eq!(back.seed, 0x00C0_FFEE);
        assert_eq!(back.op_index, 20);
        assert_eq!(back.counts, bundle.counts);
        assert_eq!(back.events, bundle.events);
        assert_eq!(back.events_dropped, 4);
        assert_eq!(back.error.unwrap().class, TamperClass::DataMac);
        assert_eq!(
            back.workload.get("mode").and_then(JsonValue::as_str),
            Some("tamper")
        );
        // Serialization is deterministic: re-render matches byte for byte.
        assert_eq!(back.to_json().to_pretty(), text);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_bad_seed() {
        let mut bundle = sample_bundle();
        bundle.schema = DUMP_SCHEMA + 1;
        let err = DumpBundle::parse(&bundle.to_json().to_pretty()).unwrap_err();
        assert!(err.contains("schema"), "{err}");

        let text = sample_bundle()
            .to_json()
            .to_pretty()
            .replace("0x0000000000c0ffee", "zz");
        assert!(DumpBundle::parse(&text).is_err());
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let path = std::env::temp_dir().join(format!(
            "clme-dump-atomic-{}.json",
            std::process::id()
        ));
        write_atomic(&path, "first version").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let _ = std::fs::remove_file(&path);
    }
}
