//! The encrypted-memory *library*: the paper's counter-light scheme
//! applied to real bytes over pluggable backing stores.
//!
//! Everything else in this workspace simulates the scheme's *timing*;
//! this crate runs its *data path* for real. [`EncryptionLayer`] wraps
//! any [`StoreBackend`] and exposes the plaintext-facing [`MemoryAdt`]
//! (batch reads and writes of 64-byte blocks), while the store only
//! ever sees:
//!
//! * **Data words** — the [Synergy 10-chip layout](clme_ecc::layout):
//!   8 ciphertext lanes, a 64-bit MAC lane, and the parity lane with the
//!   EncryptionMetadata word riding it (Section IV-C), so a block's
//!   counter decodes from the block itself with zero extra traffic.
//! * **Counter words** — one [split-counter block](clme_counters::split)
//!   per 64-block page, sealed with a keyed MAC that also binds the
//!   page's integrity-tree leaf count.
//! * **Tree-node words** — an 8-ary counter tree over the pages whose
//!   root lives *inside the layer* ("on chip"), never in the store, so
//!   replaying stale metadata is detected.
//!
//! Blocks encrypt under AES-CTR one-time pads keyed by (address,
//! counter) with a Carter–Wegman MAC; a block whose counter passes the
//! saturation point permanently switches to AES-XTS with a SHA-3 MAC —
//! the paper's counterless fallback. Every read verifies the whole
//! chain (tree path → counter block → metadata word → block MAC) and
//! returns a typed [`IntegrityError`] naming the failure class on any
//! mismatch. [`EncryptionLayer::rekey`] re-encrypts every live block
//! and reseals all metadata under a fresh master key while the layer
//! stays online.
//!
//! The layer is `Send + Sync`: pages shard across interior locks, so
//! disjoint regions proceed in parallel while a page roll (64 blocks
//! re-encrypted at once) stays atomic.
//!
//! # Quickstart
//!
//! ```
//! use clme_mem::{EncryptionLayer, MemoryAdt, VecBackend};
//!
//! let backend = VecBackend::for_blocks(256);
//! let mem = EncryptionLayer::new(backend, 256, [7u8; 32]).unwrap();
//! mem.batch_write(&[(3, [0xAB; 64])]).unwrap();
//! assert_eq!(mem.batch_read(&[3]).unwrap()[0], [0xAB; 64]);
//! ```

pub mod adt;
pub mod cache;
pub mod dump;
pub mod error;
pub mod flight;
pub mod geometry;
pub mod layer;
pub mod metrics;
pub mod store;
pub mod tenant;

pub use adt::{Block, MemoryAdt, BLOCK_BYTES};
pub use cache::ClockCache;
pub use dump::{write_atomic, DumpBundle, DumpContext, DumpCounts, DUMP_SCHEMA};
pub use error::{IntegrityError, MemError, TamperClass};
pub use flight::{FlightKind, FlightRecorder, BURST_FLOOR, FLIGHT_CAPACITY, FLIGHT_KINDS, SLOW_LOCK_NS};
pub use geometry::{Geometry, Region, NODE_ARITY, PAGE_BLOCKS};
pub use layer::{EncryptionLayer, LayerOptions, RekeyReport, DEFAULT_CACHE_PAGES};
pub use metrics::{
    CacheCause, CacheStats, MemMetrics, MemMetricsSnapshot, MemOp, MemStage, OpStats, RekeyStats,
    Stamp, StoreMetrics, StoreStats, CACHE_CAUSES, MEM_OPS, MEM_STAGES,
};
pub use store::{FileBackend, StoreBackend, StoredWord, VecBackend, WORD_BYTES};
pub use tenant::{
    SloRow, SloSpec, TailCause, TenantRanges, TenantRow, TenantServe, TenantSnapshot,
    TenantTelemetry, VisitSegments, BURN_WINDOWS, DEFAULT_TAIL_CUTOFF_NS, DEFAULT_TENANT_TOP,
    TAIL_CAUSES,
};
