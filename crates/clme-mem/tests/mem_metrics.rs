//! Telemetry pipeline invariants that need a real multi-threaded layer
//! and a counting allocator: merged metrics must be exact (not sampled)
//! under any thread interleaving, and the hot increment path must never
//! touch the heap.

use clme_mem::{EncryptionLayer, MemMetrics, MemOp, MemoryAdt, Stamp, VecBackend};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Per-thread allocation counter
// ---------------------------------------------------------------------

// The counter is thread-local so concurrently running tests (and the
// test harness's own threads) cannot leak allocations into another
// test's measurement window.
thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

fn pattern(tag: u8) -> clme_mem::Block {
    core::array::from_fn(|i| tag ^ i as u8)
}

/// Whatever order the scheduler runs the writers in, the merged
/// telemetry must account for every block exactly once: counters and
/// histogram totals are exact sums, not samples.
#[test]
#[cfg_attr(feature = "telemetry-off", ignore = "telemetry compiled out")]
fn merged_counts_are_deterministic_across_thread_interleavings() {
    for threads in [2usize, 4, 8] {
        let blocks_per_thread = 256u64;
        let layer = Arc::new(
            EncryptionLayer::new(
                VecBackend::for_blocks(blocks_per_thread * threads as u64),
                blocks_per_thread * threads as u64,
                [0x5A; 32],
            )
            .unwrap(),
        );
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let layer = Arc::clone(&layer);
                std::thread::spawn(move || {
                    let base = t as u64 * blocks_per_thread;
                    for chunk in 0..(blocks_per_thread / 64) {
                        let batch: Vec<_> = (0..64)
                            .map(|i| (base + chunk * 64 + i, pattern(t as u8)))
                            .collect();
                        layer.batch_write(&batch).unwrap();
                        let addrs: Vec<u64> =
                            (0..64).map(|i| base + chunk * 64 + i).collect();
                        let got = layer.batch_read(&addrs).unwrap();
                        assert!(got.iter().all(|b| *b == pattern(t as u8)));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let total = blocks_per_thread * threads as u64;
        let batches = threads as u64 * (blocks_per_thread / 64);
        let snap = layer.metrics_snapshot();
        assert_eq!(snap.blocks_written, total, "{threads} writer threads");
        assert_eq!(snap.blocks_read, total);
        assert_eq!(snap.batch_writes, batches);
        assert_eq!(snap.batch_reads, batches);
        assert_eq!(snap.integrity_errors, 0);
        // Read op latency rides the span tracer's existing clock reads,
        // so it is exhaustive; the write-path probe set is sampled 1-in-8
        // per thread, so only bounds hold for its count.
        let write_lat = snap.op(MemOp::Write).latency.count();
        assert!(
            write_lat >= total / 16 && write_lat <= total,
            "{threads} threads: {write_lat} sampled write latencies of {total} blocks"
        );
        assert_eq!(snap.op(MemOp::Read).latency.count(), total);
        assert_eq!(snap.op(MemOp::Batch).latency.count(), 2 * batches);
        // Each batch touches exactly one page -> one lock acquisition,
        // but the wait/hold probes are sampled per thread (1-in-8 on
        // the write path, 1-in-64 on the cache-fast read path), so
        // only bounds are deterministic. Every thread's first probe
        // fires, and every sampled wait pairs with a hold.
        let waits: u64 = snap.lock_wait.iter().map(|h| h.count()).sum();
        let holds: u64 = snap.lock_hold.iter().map(|h| h.count()).sum();
        assert_eq!(waits, holds);
        assert!(
            waits >= threads as u64 && waits <= 2 * batches,
            "{threads} threads: {waits} sampled waits out of {} acquisitions",
            2 * batches
        );
        assert_eq!(snap.observed_writes_total, total);
    }
}

/// The increment path — counters, gauges, sharded histograms, per-page
/// observation slots — must stay allocation-free: it runs inside every
/// read and write the layer serves.
#[test]
fn hot_increment_path_does_not_allocate() {
    let metrics = MemMetrics::new(16, 64);
    // Warm the per-thread histogram shard slot and any lazy TLS before
    // the measurement window.
    metrics.op_duration(MemOp::Read, std::time::Duration::from_micros(3));
    metrics.observe_ciphertext_write(0);
    metrics.note_read_batch(1);

    let before = thread_allocs();
    for i in 0..10_000u64 {
        let t0 = Stamp::now();
        metrics.note_read_batch(64);
        metrics.note_write_batch(64);
        metrics.op_duration(MemOp::Read, std::time::Duration::from_nanos(500 + i));
        metrics.op_between(MemOp::Write, t0, Stamp::now());
        metrics.stage_duration(
            MemOp::Read,
            clme_mem::MemStage::MacVerify,
            std::time::Duration::from_nanos(i),
        );
        metrics.lock_wait((i % 16) as usize, t0, Stamp::now());
        metrics.lock_hold((i % 16) as usize, t0);
        metrics.observe_ciphertext_write(i % 64);
        metrics.page_roll();
        metrics.counterless_read();
        let _ = metrics.sample();
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "hot telemetry increments allocated on the heap"
    );

    // Snapshotting is allowed to allocate; just prove the traffic above
    // actually landed (when telemetry is compiled in).
    let snap = metrics.snapshot(None);
    #[cfg(not(feature = "telemetry-off"))]
    {
        assert_eq!(snap.op(MemOp::Read).latency.count(), 10_001);
        assert_eq!(snap.page_rolls, 10_000);
    }
    #[cfg(feature = "telemetry-off")]
    assert_eq!(snap.blocks_read, 0);
}
