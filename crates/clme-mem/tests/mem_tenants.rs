//! Multi-tenant observability invariants that need the real layer and
//! the real traffic composer together: byte-deterministic composed
//! streams regardless of executing thread count, exact top-K accounting
//! with the long tail folded into `__other__`, and Prometheus output
//! that survives hostile tenant display names.
//!
//! Under `telemetry-off` the tenant probes compile to no-ops and the
//! snapshot comes back empty, so the accounting assertions are gated on
//! the default feature set.

use clme_mem::{EncryptionLayer, MemoryAdt, SloSpec, TenantRanges, TenantTelemetry, VecBackend};
use clme_workloads::tenants::{ComposedBatch, TenantComposer, TenantTrafficConfig};
use std::sync::Arc;

const PAGE_BLOCKS: u64 = clme_mem::PAGE_BLOCKS as u64;

fn traffic(tenants: u64, pages_per: u64, seed: u64) -> TenantTrafficConfig {
    TenantTrafficConfig {
        tenants,
        seed,
        skew: 1.2,
        pages_per_tenant: pages_per,
        page_blocks: PAGE_BLOCKS,
        batch_blocks: 64,
    }
}

fn layer_for(cfg: &TenantTrafficConfig) -> EncryptionLayer<VecBackend> {
    let blocks = cfg.tenants * cfg.pages_per_tenant * PAGE_BLOCKS;
    EncryptionLayer::new(VecBackend::for_blocks(blocks), blocks, [9u8; 32])
        .expect("layer builds")
}

fn telemetry_for(cfg: &TenantTrafficConfig, top_k: usize, slos: &str) -> Arc<TenantTelemetry> {
    let composer = TenantComposer::new(*cfg);
    Arc::new(TenantTelemetry::new(
        TenantRanges {
            count: cfg.tenants,
            first_page: 0,
            pages_per: cfg.pages_per_tenant,
        },
        top_k,
        &composer.expected_heaviest(top_k),
        SloSpec::parse_list(slos).expect("valid slos"),
    ))
}

/// Runs pre-composed batches against the layer over `threads` workers,
/// round-robin by batch index, recording into the tenant telemetry.
/// The composition (and its digest) happened before any thread spawned,
/// so the stream is identical whatever `threads` is.
fn execute(
    layer: &Arc<EncryptionLayer<VecBackend>>,
    telemetry: &Arc<TenantTelemetry>,
    batches: &[ComposedBatch],
    threads: usize,
) {
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let layer = Arc::clone(layer);
            let telemetry = Arc::clone(telemetry);
            let mine: Vec<ComposedBatch> = batches
                .iter()
                .skip(worker)
                .step_by(threads)
                .cloned()
                .collect();
            scope.spawn(move || {
                for batch in mine {
                    let started = std::time::Instant::now();
                    if batch.write {
                        let data: Vec<(u64, clme_mem::Block)> = batch
                            .addrs
                            .iter()
                            .map(|&addr| (addr, [addr as u8; 64]))
                            .collect();
                        layer.batch_write(&data).expect("write succeeds");
                    } else {
                        layer.batch_read(&batch.addrs).expect("read succeeds");
                    }
                    telemetry.record_op(
                        batch.tenant,
                        batch.write,
                        started.elapsed().as_nanos() as u64,
                        batch.addrs.len() as u64,
                    );
                }
            });
        }
    });
}

#[test]
fn composed_stream_is_deterministic_across_runs_and_thread_counts() {
    let cfg = traffic(16, 2, 0xFEED);
    let mut a = TenantComposer::new(cfg);
    let mut b = TenantComposer::new(cfg);
    let batches_a = a.compose(96);
    let batches_b = b.compose(96);
    assert_eq!(batches_a, batches_b, "same seed must compose the same stream");
    assert_eq!(a.digest(), b.digest());

    // Execute the identical stream under 1 and 4 threads: the digest is
    // already fixed (composition-time), and the per-tenant op/block
    // counters must agree exactly because they are recorded per batch,
    // not per timing.
    #[cfg(not(feature = "telemetry-off"))]
    {
        let mut snapshots = Vec::new();
        for threads in [1usize, 4] {
            let layer = Arc::new(layer_for(&cfg));
            let telemetry = telemetry_for(&cfg, 4, "read-p99=1s");
            execute(&layer, &telemetry, &batches_a, threads);
            snapshots.push(telemetry.snapshot());
        }
        let counters = |snap: &clme_mem::TenantSnapshot| -> Vec<(String, [u64; 2], [u64; 2])> {
            snap.rows
                .iter()
                .map(|r| (r.label.clone(), r.ops, r.blocks))
                .collect()
        };
        assert_eq!(
            counters(&snapshots[0]),
            counters(&snapshots[1]),
            "per-tenant ops/blocks must not depend on the executing thread count"
        );
        assert_eq!(snapshots[0].folded_ops, snapshots[1].folded_ops);
    }
}

#[cfg(not(feature = "telemetry-off"))]
#[test]
fn top_k_rows_are_exact_and_tail_folds_into_other() {
    let cfg = traffic(100, 1, 7);
    let mut composer = TenantComposer::new(cfg);
    let telemetry = telemetry_for(&cfg, 8, "read-p99=1s");
    let admitted: Vec<u64> = composer.expected_heaviest(8);

    // Ground truth per tenant, accumulated alongside the recording.
    let mut truth = vec![[0u64; 2]; 100];
    for _ in 0..600 {
        let batch = composer.next_batch();
        truth[batch.tenant as usize][batch.write as usize] += 1;
        telemetry.record_op(batch.tenant, batch.write, 1_000, batch.addrs.len() as u64);
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.rows.len(), 9, "8 exact rows plus the __other__ rollup");
    let mut folded_expected = 0u64;
    for (t, counts) in truth.iter().enumerate() {
        if !admitted.contains(&(t as u64)) {
            folded_expected += counts[0] + counts[1];
        }
    }
    for row in &snap.rows[..8] {
        let id = row.id.expect("exact rows carry the tenant id") as usize;
        assert!(admitted.contains(&(id as u64)));
        assert_eq!(row.ops, truth[id], "exact slot must match ground truth for tenant {id}");
    }
    let other = &snap.rows[8];
    assert_eq!(other.id, None);
    assert_eq!(other.label, "__other__");
    assert_eq!(other.ops[0] + other.ops[1], folded_expected);
    assert_eq!(snap.folded_ops, folded_expected);
}

#[cfg(not(feature = "telemetry-off"))]
#[test]
fn hostile_tenant_labels_cannot_break_the_prom_exposition() {
    let cfg = traffic(8, 1, 11);
    let telemetry = telemetry_for(&cfg, 8, "read-p99=1s");
    let long_name = "x".repeat(200);
    let hostile = [
        (0u64, "quote\"inject\"}"),
        (1, "new\nline{evil=\"1\"}"),
        (2, "back\\slash"),
        (3, "ünïcódé-租户-🦀"),
    ];
    for &(id, name) in &hostile {
        telemetry.set_label(id, name);
    }
    telemetry.set_label(4, &long_name);
    for t in 0..8 {
        telemetry.record_op(t, false, 1_000, 64);
    }

    let text = clme_obs::prom::render(&telemetry.snapshot().prom_samples());
    // The exposition grammar survives: every quote, newline, and
    // backslash in a label value is escaped, so no rendered line is
    // split or terminated early by a hostile name.
    assert!(text.contains("quote\\\"inject\\\"}"), "quotes must be escaped:\n{text}");
    assert!(text.contains("new\\nline{{evil=\\\"1\\\"}}") || text.contains("new\\nline"),
        "newlines must be escaped:\n{text}");
    assert!(text.contains("back\\\\slash"), "backslashes must be escaped:\n{text}");
    assert!(text.contains("ünïcódé-租户-🦀"), "plain UTF-8 passes through");
    assert!(text.contains(&long_name), "long names pass through intact");
    for line in text.lines() {
        if let Some(open) = line.find('{') {
            let close = line.rfind('}');
            assert!(
                close.is_some() && close.unwrap() > open,
                "label block must close on the same line: {line}"
            );
        }
        assert!(
            !line.contains("evil=\"1\""),
            "injected label must stay escaped inside the value: {line}"
        );
    }
}

#[cfg(not(feature = "telemetry-off"))]
#[test]
fn layer_hooks_attribute_cache_and_observation_to_the_owning_tenant() {
    let cfg = traffic(4, 1, 23);
    let layer = {
        let blocks = cfg.tenants * cfg.pages_per_tenant * PAGE_BLOCKS;
        let backend = VecBackend::for_blocks(blocks);
        let mut layer = EncryptionLayer::new(backend, blocks, [5u8; 32]).expect("layer builds");
        layer.install_tenants(telemetry_for(&cfg, 4, "read-p99=1s"));
        layer
    };

    // Tenant 2's page: write it (ciphertext observations), then read it
    // twice — miss then verified-page hit.
    let base = 2 * PAGE_BLOCKS;
    let writes: Vec<(u64, clme_mem::Block)> =
        (0..PAGE_BLOCKS).map(|i| (base + i, [7u8; 64])).collect();
    layer.batch_write(&writes).expect("write");
    let addrs: Vec<u64> = (0..PAGE_BLOCKS).map(|i| base + i).collect();
    layer.batch_read(&addrs).expect("cold read");
    layer.batch_read(&addrs).expect("cached read");

    let snap = layer.tenants().expect("installed").snapshot();
    let row = snap
        .rows
        .iter()
        .find(|r| r.id == Some(2))
        .expect("tenant 2 has an exact slot");
    assert!(row.ciphertext_writes >= PAGE_BLOCKS, "observed {}", row.ciphertext_writes);
    assert!(row.cache[0] >= 1, "second read must hit the verified-page cache");
    assert!(row.cache[2] >= 1, "first read must miss");
    for other in snap.rows.iter().filter(|r| r.id != Some(2) && r.id.is_some()) {
        assert_eq!(other.ciphertext_writes, 0, "{} saw foreign traffic", other.label);
        assert_eq!(other.cache, [0, 0, 0]);
    }

    // Rekey resets key-exposure gauges but not cumulative observations.
    assert!(row.key_exposure_writes > 0);
    layer.rekey([6u8; 32]).expect("rekey");
    let after = layer.tenants().expect("installed").snapshot();
    let row_after = after.rows.iter().find(|r| r.id == Some(2)).expect("slot");
    assert_eq!(row_after.key_exposure_writes, 0, "exposure resets at rekey");
    assert!(row_after.ciphertext_writes >= PAGE_BLOCKS, "observation history survives");
}
